// Integration tests: full Slice Tuner pipelines across modules, checking the
// qualitative claims of the paper on small budgets (acquisition helps; the
// optimizer routes budget toward hard slices; crowdsourced acquisition
// composes with the iterative algorithm).

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/slice_tuner.h"
#include "data/acquisition.h"
#include "data/synthetic.h"

namespace slicetuner {
namespace {

TEST(IntegrationTest, AcquisitionReducesLossOnCensus) {
  ExperimentConfig config;
  config.preset = MakeCensusLike();
  config.initial_sizes = EqualSizes(4, 80);
  config.val_per_slice = 100;
  config.budget = 400.0;
  config.trials = 2;
  config.seed = 3;
  config.curve_options.num_points = 4;
  config.curve_options.num_curve_draws = 1;

  const auto original = RunMethod(config, Method::kOriginal);
  const auto moderate = RunMethod(config, Method::kModerate);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(moderate.ok());
  // 5x more data in expectation: loss must drop.
  EXPECT_LT(moderate->loss_mean, original->loss_mean);
}

TEST(IntegrationTest, OptimizerRoutesBudgetTowardHardSlices) {
  // Census slices 2 and 3 have the smallest margins and most label noise:
  // their losses are the highest, so (with fairness pressure) they should
  // receive more data than the easy slices 0 and 1 — the paper's Table 3
  // shows exactly this pattern (slices 2 and 3 of AdultCensus get nearly
  // the whole budget).
  ExperimentConfig config;
  config.preset = MakeCensusLike();
  config.initial_sizes = EqualSizes(4, 120);
  config.val_per_slice = 120;
  config.budget = 400.0;
  config.lambda = 1.0;
  config.trials = 3;
  config.seed = 4;
  config.curve_options.num_points = 5;
  config.curve_options.num_curve_draws = 2;

  const auto moderate = RunMethod(config, Method::kModerate);
  ASSERT_TRUE(moderate.ok());
  const double easy = moderate->acquired_mean[0] + moderate->acquired_mean[1];
  const double hard = moderate->acquired_mean[2] + moderate->acquired_mean[3];
  EXPECT_GT(hard, easy);
}

TEST(IntegrationTest, CrowdsourcingSourceComposesWithIterative) {
  const DatasetPreset preset = MakeFaceLike();
  Rng rng(7);
  const Dataset train = preset.generator.GenerateDataset(
      EqualSizes(8, 60), &rng);
  const Dataset validation = preset.generator.GenerateDataset(
      EqualSizes(8, 60), &rng);

  CrowdsourceOptions cs;
  cs.mean_task_seconds = {82.1, 81.9, 67.6, 79.3, 94.8, 77.5, 91.6, 104.6};
  CrowdsourceSimulator source(&preset.generator, cs, rng.ForkSeed(0));

  SliceTunerOptions options;
  options.model_spec = preset.model_spec;
  options.trainer = preset.trainer;
  options.trainer.epochs = 10;
  options.curve_options.num_points = 4;
  options.curve_options.num_curve_draws = 1;
  options.curve_options.seed = 9;
  auto tuner = SliceTuner::Create(train, validation, 8, options);
  ASSERT_TRUE(tuner.ok());

  IterativeOptions it;
  it.max_iterations = 3;
  const auto run = tuner->Acquire(&source, 300.0, it);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run->budget_spent, 300.0 + 1e-9);
  EXPECT_GT(tuner->train().size(), train.size());
  // The simulator performed real (simulated) crowd work.
  size_t submitted = 0;
  for (size_t t : source.stats().tasks_submitted) submitted += t;
  EXPECT_GT(submitted, 0u);
}

TEST(IntegrationTest, SuggestedPlanMatchesCurveQuality) {
  // Build a two-slice dataset where slice 1's data is pure noise (label
  // independent of features). Slice Tuner should spend more on the slice
  // that actually improves with data (slice 0) when lambda = 0.
  Rng rng(8);
  Dataset train(4), validation(4);
  for (int slice = 0; slice < 2; ++slice) {
    for (int i = 0; i < 150; ++i) {
      Example e;
      e.slice = slice;
      e.features.resize(4);
      if (slice == 0) {
        e.label = i % 2;
        for (auto& f : e.features) {
          f = rng.Normal(e.label == 0 ? -1.5 : 1.5, 1.0);
        }
      } else {
        e.label = rng.Bernoulli(0.5) ? 1 : 0;
        for (auto& f : e.features) f = rng.Normal(0.0, 1.0);
      }
      ASSERT_TRUE(train.Append(e).ok());
      e.slice = slice;
      ASSERT_TRUE(validation.Append(e).ok());
    }
  }
  SliceTunerOptions options;
  options.model_spec = ModelSpec{4, 2, {8}, 0, 32};
  options.trainer.epochs = 15;
  options.curve_options.num_points = 5;
  options.curve_options.num_curve_draws = 2;
  options.curve_options.seed = 10;
  options.lambda = 0.0;
  auto tuner = SliceTuner::Create(train, validation, 2, options);
  ASSERT_TRUE(tuner.ok());
  const auto curves = tuner->EstimateCurves();
  ASSERT_TRUE(curves.ok());
  // The learnable slice should exhibit a steeper fitted curve.
  EXPECT_GE(curves->slices[0].curve.a + 0.02, curves->slices[1].curve.a);
}

TEST(IntegrationTest, FashionPipelineEndToEnd) {
  // A fuller pipeline on the 10-slice Fashion-like preset with a small
  // budget: checks the whole stack holds together at |S| = 10.
  ExperimentConfig config;
  config.preset = MakeFashionLike();
  config.initial_sizes = EqualSizes(10, 60);
  config.val_per_slice = 60;
  config.budget = 300.0;
  config.trials = 1;
  config.seed = 11;
  config.curve_options.num_points = 4;
  config.curve_options.num_curve_draws = 1;
  config.preset.trainer.epochs = 10;

  const auto moderate = RunMethod(config, Method::kModerate);
  ASSERT_TRUE(moderate.ok());
  double total = 0.0;
  for (double a : moderate->acquired_mean) total += a;
  EXPECT_GT(total, 0.0);
  EXPECT_LE(total, 300.0 + 1e-9);
  EXPECT_GT(moderate->loss_mean, 0.0);
}

}  // namespace
}  // namespace slicetuner
