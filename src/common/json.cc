#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace slicetuner {
namespace json {

namespace {

// Nesting bound for the recursive-descent parser and the writer.
constexpr int kMaxDepth = 64;

}  // namespace

Result<long long> ParseInt64(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty() || errno == ERANGE) {
    return Status::InvalidArgument("bad integer '" + text + "'");
  }
  return value;
}

Result<uint64_t> ParseUint64(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty() || errno == ERANGE ||
      text[0] == '-') {
    return Status::InvalidArgument("bad unsigned integer '" + text + "'");
  }
  return static_cast<uint64_t>(value);
}

Result<double> ParseFloat64(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty() || errno == ERANGE) {
    return Status::InvalidArgument("bad number '" + text + "'");
  }
  return value;
}

std::string FormatFloat64(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest of %.15g / %.16g / %.17g that survives a strtod round trip.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  std::string out = buf;
  // Keep doubles parseable as doubles: a whole value like 40 would reparse
  // as an integer and break the parse(serialize(x)) == x contract.
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

std::string EscapeString(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

long long Value::int_value() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) {
    // Saturate instead of static_cast: out-of-range and NaN casts are UB,
    // and doubles here can come straight off the wire.
    if (std::isnan(double_)) return 0;
    constexpr double kMax = 9223372036854774784.0;  // largest ll-exact double
    if (double_ >= kMax) return 9223372036854775807LL;
    if (double_ <= -kMax) return -9223372036854775807LL - 1;
    return static_cast<long long>(double_);
  }
  return 0;
}

double Value::number_value() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ == Type::kDouble) return double_;
  return 0.0;
}

const std::string& Value::string_value() const {
  static const std::string kEmpty;
  return type_ == Type::kString ? string_ : kEmpty;
}

void Value::Set(const std::string& key, Value value) {
  if (type_ != Type::kObject) {
    *this = Object();
  }
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const Value* Value::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string Value::GetString(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : fallback;
}

long long Value::GetInt(const std::string& key, long long fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->int_value() : fallback;
}

double Value::GetDouble(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

bool Value::GetBool(const std::string& key, bool fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      // Bitwise-style equality via ==; NaN never round-trips anyway.
      return double_ == other.double_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return items_ == other.items_;
    case Type::kObject:
      return members_ == other.members_;
  }
  return false;
}

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      *out += StrFormat("%lld", int_);
      return;
    case Type::kDouble:
      *out += FormatFloat64(double_);
      return;
    case Type::kString:
      *out += EscapeString(string_);
      return;
    case Type::kArray: {
      *out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += indent > 0 ? ", " : ",";
        items_[i].DumpTo(out, indent, depth + 1);
      }
      *out += ']';
      return;
    }
    case Type::kObject: {
      if (indent == 0 || depth >= kMaxDepth) {
        *out += '{';
        for (size_t i = 0; i < members_.size(); ++i) {
          if (i > 0) *out += ',';
          *out += EscapeString(members_[i].first);
          *out += ':';
          members_[i].second.DumpTo(out, 0, depth + 1);
        }
        *out += '}';
        return;
      }
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      const std::string pad((depth + 1) * indent, ' ');
      *out += "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        *out += pad;
        *out += EscapeString(members_[i].first);
        *out += ": ";
        members_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < members_.size()) *out += ',';
        *out += '\n';
      }
      out->append(static_cast<size_t>(depth * indent), ' ');
      *out += '}';
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> ParseDocument() {
    Value value;
    ST_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at offset %zu", why.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Fail(StrFormat("expected '%s'", literal));
    }
    pos_ += len;
    return Status::OK();
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        ST_RETURN_NOT_OK(Expect("null"));
        *out = Value();
        return Status::OK();
      case 't':
        ST_RETURN_NOT_OK(Expect("true"));
        *out = Value(true);
        return Status::OK();
      case 'f':
        ST_RETURN_NOT_OK(Expect("false"));
        *out = Value(false);
        return Status::OK();
      case '"': {
        std::string s;
        ST_RETURN_NOT_OK(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      Value item;
      ST_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      out->Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      ST_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      Value value;
      ST_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value += static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value += static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value += static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          ST_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with a low surrogate.
            if (text_.compare(pos_, 2, "\\u") != 0) {
              return Fail("unpaired surrogate in \\u escape");
            }
            pos_ += 2;
            uint32_t low = 0;
            ST_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("bad low surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired low surrogate in \\u escape");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("expected a value");
    }
    // RFC 8259: the integer part is either a single 0 or starts 1-9.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Fail("leading zeros are not allowed");
    }
    bool integral = true;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digit expected in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      const Result<long long> as_int = ParseInt64(token);
      if (as_int.ok()) {
        *out = Value(*as_int);
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    const Result<double> as_double = ParseFloat64(token);
    if (!as_double.ok()) return Fail("bad number '" + token + "'");
    *out = Value(*as_double);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Value::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace json
}  // namespace slicetuner
