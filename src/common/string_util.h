// Small string helpers shared by CSV/table output and dataset naming.

#ifndef SLICETUNER_COMMON_STRING_UTIL_H_
#define SLICETUNER_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace slicetuner {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `delim`; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string Strip(std::string_view text);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 3);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace slicetuner

#endif  // SLICETUNER_COMMON_STRING_UTIL_H_
