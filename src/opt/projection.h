// Euclidean projection onto the budget simplex
//   { d : d_i >= 0, sum_i c_i d_i = B }
// used by the projected-gradient solver for the selective data acquisition
// problem (Section 5.1).

#ifndef SLICETUNER_OPT_PROJECTION_H_
#define SLICETUNER_OPT_PROJECTION_H_

#include <vector>

#include "common/result.h"

namespace slicetuner {

/// Projects `v` onto {d >= 0, c.d = B}. Costs must be positive and B >= 0.
/// Solved exactly via the KKT conditions: d_i = max(0, v_i - mu * c_i) with
/// mu found by bisection on the (monotone) spend function.
Result<std::vector<double>> ProjectOntoBudgetSimplex(
    const std::vector<double>& v, const std::vector<double>& costs,
    double budget);

/// Total spend sum_i c_i d_i.
double Spend(const std::vector<double>& d, const std::vector<double>& costs);

}  // namespace slicetuner

#endif  // SLICETUNER_OPT_PROJECTION_H_
