// Server smoke test: spawns the real slicetuner_serve binary on an
// ephemeral port and drives it with the real slicetuner_client CLI —
// submit a job, stream its progress (>= 2 frames), cancel a second job,
// check stats, and shut down gracefully, asserting clean exits throughout.
// This is the end-to-end contract of the serving subsystem exercised the
// way an operator would.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/string_util.h"

namespace slicetuner {
namespace {

#ifndef SLICETUNER_SERVE_BIN
#define SLICETUNER_SERVE_BIN "./slicetuner_serve"
#endif
#ifndef SLICETUNER_CLIENT_BIN
#define SLICETUNER_CLIENT_BIN "./slicetuner_client"
#endif

struct CommandResult {
  int exit_code = -1;
  std::vector<std::string> lines;
};

CommandResult RunCommand(const std::string& command) {
  CommandResult result;
  std::FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  std::string current;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    current += buf;
    size_t newline;
    while ((newline = current.find('\n')) != std::string::npos) {
      result.lines.push_back(current.substr(0, newline));
      current.erase(0, newline + 1);
    }
  }
  if (!current.empty()) result.lines.push_back(current);
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// The last line of a client invocation that parses as JSON.
json::Value LastJson(const CommandResult& result) {
  for (auto it = result.lines.rbegin(); it != result.lines.rend(); ++it) {
    const Result<json::Value> parsed = json::Value::Parse(*it);
    if (parsed.ok()) return *parsed;
  }
  return json::Value();
}

std::string JoinLines(const CommandResult& result) {
  std::string all;
  for (const std::string& line : result.lines) {
    all += line;
    all += '\n';
  }
  return all;
}

TEST(ServeSmokeTest, SubmitStreamCancelShutdownViaRealBinaries) {
  // Launch the server on an ephemeral port and read the port back off its
  // banner line.
  std::FILE* server = ::popen(
      (std::string(SLICETUNER_SERVE_BIN) +
       " --port=0 --max-queue=8 --max-batch=4 2>&1")
          .c_str(),
      "r");
  ASSERT_NE(server, nullptr);

  int port = 0;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), server) != nullptr) {
    const std::string line = buf;
    const size_t marker = line.find("listening on 127.0.0.1:");
    if (marker != std::string::npos) {
      port = std::atoi(line.c_str() + marker +
                       std::strlen("listening on 127.0.0.1:"));
      break;
    }
  }
  ASSERT_GT(port, 0) << "server never printed its listen banner";

  const std::string client =
      std::string(SLICETUNER_CLIENT_BIN) + " --port=" + std::to_string(port);

  // 1. Submit a 2-round tuning job.
  const CommandResult submitted = RunCommand(
      client + " submit --session=s1 --rows=40 --budget=40 --rounds=2");
  EXPECT_EQ(submitted.exit_code, 0) << JoinLines(submitted);
  EXPECT_TRUE(LastJson(submitted).GetBool("ok")) << JoinLines(submitted);

  // 2. Stream it to completion: at least 2 progress frames, then done.
  const CommandResult streamed = RunCommand(client + " stream --session=s1");
  EXPECT_EQ(streamed.exit_code, 0) << JoinLines(streamed);
  int progress_frames = 0;
  std::string final_state;
  for (const std::string& line : streamed.lines) {
    const Result<json::Value> frame = json::Value::Parse(line);
    if (!frame.ok()) continue;
    const std::string kind = frame->GetString("frame");
    if (kind == "progress") ++progress_frames;
    if (kind == "done") final_state = frame->GetString("state");
  }
  EXPECT_GE(progress_frames, 2) << JoinLines(streamed);
  EXPECT_EQ(final_state, "done") << JoinLines(streamed);

  // 3. Submit a long job and cancel it; it must resolve cancelled.
  const CommandResult long_job = RunCommand(
      client + " submit --session=s2 --rows=40 --budget=400 --rounds=400");
  EXPECT_EQ(long_job.exit_code, 0) << JoinLines(long_job);
  const CommandResult cancelled =
      RunCommand(client + " cancel --session=s2");
  EXPECT_EQ(cancelled.exit_code, 0) << JoinLines(cancelled);
  std::string s2_state;
  for (int attempt = 0; attempt < 600; ++attempt) {
    const CommandResult polled = RunCommand(client + " poll --session=s2");
    s2_state = LastJson(polled).GetString("state");
    if (s2_state == "cancelled" || s2_state == "done" ||
        s2_state == "failed") {
      break;
    }
  }
  EXPECT_EQ(s2_state, "cancelled");

  // 4. Stats must acknowledge and report both sessions.
  const CommandResult stats = RunCommand(client + " stats");
  EXPECT_EQ(stats.exit_code, 0) << JoinLines(stats);
  const json::Value stats_json = LastJson(stats);
  EXPECT_TRUE(stats_json.GetBool("ok"));
  const json::Value* sessions = stats_json.Find("sessions");
  ASSERT_NE(sessions, nullptr) << JoinLines(stats);
  EXPECT_EQ(sessions->GetInt("sessions"), 2);

  // 5. Graceful shutdown: the client is acknowledged and the server
  // process exits 0 after writing its stats summary.
  const CommandResult shutdown = RunCommand(client + " shutdown");
  EXPECT_EQ(shutdown.exit_code, 0) << JoinLines(shutdown);

  std::string server_tail;
  while (std::fgets(buf, sizeof(buf), server) != nullptr) {
    server_tail += buf;
  }
  const int server_status = ::pclose(server);
  EXPECT_TRUE(WIFEXITED(server_status));
  EXPECT_EQ(WEXITSTATUS(server_status), 0) << server_tail;
  EXPECT_NE(server_tail.find("shut down cleanly"), std::string::npos)
      << server_tail;
}

}  // namespace
}  // namespace slicetuner
