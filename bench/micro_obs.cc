// Observability microbenchmark: the cost of the metrics layer and the
// flight recorder.
//
// Part 1 times the hot-path primitives (Counter::Add, Histogram::Record,
// Recorder::Record) single-threaded, under an 8-thread hammer, and with
// each subsystem disabled (the SetEnabled(false) fast paths). Part 2
// validates the log-bucketed histogram's quantiles against an exact sorted
// reference on a log-normal workload. Part 3 is the overhead gate: the
// same in-process serve wave (real TCP, micro-batched tuning jobs) runs
// with metrics enabled and disabled in alternating pairs — the flight
// recorder stays ON in both waves, as in production ("always-on") — and
// the median enabled/disabled ratio must stay under the 3% budget
// documented in docs/OBSERVABILITY.md.
//
// Writes BENCH_obs.json (gated against bench/baselines/ by
// scripts/check_bench.py: the wall-second keys and the booleans).
//
// Usage: bench_micro_obs [--pairs=5] [--jobs=4] [--rows=60] [--threads=0]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "serve/client.h"
#include "serve/server.h"

namespace slicetuner {
namespace {

constexpr int kSingleThreadOps = 4'000'000;
constexpr int kHammerThreads = 8;
constexpr int kHammerOpsPerThread = 500'000;

double NsPerOp(double seconds, double ops) { return seconds * 1e9 / ops; }

double TimeCounterSingle(obs::Counter* counter) {
  Stopwatch timer;
  for (int i = 0; i < kSingleThreadOps; ++i) counter->Add();
  return NsPerOp(timer.ElapsedSeconds(), kSingleThreadOps);
}

double TimeCounterHammer(obs::Counter* counter) {
  std::vector<std::thread> threads;
  Stopwatch timer;
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kHammerOpsPerThread; ++i) counter->Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  return NsPerOp(timer.ElapsedSeconds(),
                 static_cast<double>(kHammerThreads) * kHammerOpsPerThread);
}

double TimeHistogramSingle(obs::Histogram* histogram) {
  Stopwatch timer;
  for (int i = 0; i < kSingleThreadOps; ++i) {
    histogram->Record(static_cast<uint64_t>(i));
  }
  return NsPerOp(timer.ElapsedSeconds(), kSingleThreadOps);
}

double TimeHistogramHammer(obs::Histogram* histogram) {
  std::vector<std::thread> threads;
  Stopwatch timer;
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kHammerOpsPerThread; ++i) {
        histogram->Record(static_cast<uint64_t>(i * (t + 1)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return NsPerOp(timer.ElapsedSeconds(),
                 static_cast<double>(kHammerThreads) * kHammerOpsPerThread);
}

double TimeRecorderSingle(obs::Recorder* recorder) {
  Stopwatch timer;
  for (int i = 0; i < kSingleThreadOps; ++i) {
    recorder->Record(obs::EventKind::kRequestRecv, 0x1234, "bench", i);
  }
  return NsPerOp(timer.ElapsedSeconds(), kSingleThreadOps);
}

double TimeRecorderHammer(obs::Recorder* recorder) {
  std::vector<std::thread> threads;
  Stopwatch timer;
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([recorder, t] {
      for (int i = 0; i < kHammerOpsPerThread; ++i) {
        recorder->Record(obs::EventKind::kRequestRecv,
                         static_cast<uint64_t>(t + 1), "bench", i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return NsPerOp(timer.ElapsedSeconds(),
                 static_cast<double>(kHammerThreads) * kHammerOpsPerThread);
}

/// Quantile estimates from the log-bucketed histogram must land within one
/// bucket (<= 12.5% relative width) of the exact order statistics.
bool QuantilesAccurate() {
  obs::Histogram histogram;
  Rng rng(41);
  std::vector<uint64_t> values;
  values.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    const uint64_t v = static_cast<uint64_t>(rng.LogNormal(9.0, 2.0));
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  const struct {
    double q;
    double estimate;
  } probes[] = {{0.5, snapshot.p50}, {0.9, snapshot.p90},
                {0.99, snapshot.p99}};
  bool ok = true;
  for (const auto& probe : probes) {
    const double rank = probe.q * (values.size() - 1);
    const double exact =
        static_cast<double>(values[static_cast<size_t>(rank)]);
    const double tolerance = 0.13 * exact + 1.0;
    if (std::fabs(probe.estimate - exact) > tolerance) {
      std::fprintf(stderr, "p%g: estimate %.1f vs exact %.1f (tol %.1f)\n",
                   probe.q * 100, probe.estimate, exact, tolerance);
      ok = false;
    }
  }
  return ok;
}

serve::Request SubmitRequest(const std::string& session, uint64_t seed,
                             long long rows) {
  serve::Request request;
  request.type = serve::RequestType::kSubmitJob;
  request.job.session = session;
  request.job.num_slices = 4;
  request.job.rows_per_slice = rows;
  request.job.budget = 60.0;
  request.job.rounds = 1;
  request.job.method = "moderate";
  request.job.seed = seed;
  request.session = session;
  return request;
}

/// One full serve wave: fresh server, `jobs` tuning jobs over real TCP,
/// polled to completion. Returns wall seconds (negative on any failure).
double ServeWave(int jobs, long long rows, int threads) {
  serve::ServerOptions options;
  options.admission.max_batch = 8;
  options.admission.max_queue_depth = static_cast<size_t>(jobs) + 4;
  options.max_concurrent_sessions = threads;
  serve::TuningServer server(options);
  ST_CHECK_OK(server.Start());
  auto connection = serve::ClientConnection::Connect(server.port());
  ST_CHECK_OK(connection.status());

  Stopwatch timer;
  double wall = -1.0;
  bool ok = true;
  for (int j = 0; j < jobs && ok; ++j) {
    auto response = connection->Call(SubmitRequest(
        "obs-" + std::to_string(j), static_cast<uint64_t>(j + 1), rows));
    ST_CHECK_OK(response.status());
    ok = serve::IsOkResponse(*response);
  }
  for (int j = 0; j < jobs && ok; ++j) {
    const std::string session = "obs-" + std::to_string(j);
    for (;;) {
      serve::Request poll;
      poll.type = serve::RequestType::kPoll;
      poll.session = session;
      auto response = connection->Call(poll);
      ST_CHECK_OK(response.status());
      const std::string state = response->GetString("state");
      if (state == "done") break;
      if (state == "failed" || state == "cancelled") {
        std::fprintf(stderr, "session %s ended %s\n", session.c_str(),
                     state.c_str());
        ok = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  if (ok) wall = timer.ElapsedSeconds();
  server.RequestShutdown();
  server.Wait();
  return wall;
}

}  // namespace
}  // namespace slicetuner

int main(int argc, char** argv) {
  using namespace slicetuner;
  const int pairs = std::max(1, bench::ParseIntFlag(argc, argv, "--pairs=", 5));
  const int jobs = std::max(1, bench::ParseIntFlag(argc, argv, "--jobs=", 4));
  const long long rows = bench::ParseIntFlag(argc, argv, "--rows=", 60);
  const int threads = bench::ParseThreadsFlag(argc, argv, /*default=*/0);
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("=== Observability microbenchmark: metric primitives + serve "
              "overhead gate ===\n");

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.SetEnabled(true);
  obs::Counter* counter = registry.counter("bench_obs_counter");
  obs::Histogram* histogram = registry.histogram("bench_obs_histogram");

  const double counter_ns = TimeCounterSingle(counter);
  const double counter_ns_8t = TimeCounterHammer(counter);
  const double histogram_ns = TimeHistogramSingle(histogram);
  const double histogram_ns_8t = TimeHistogramHammer(histogram);
  registry.SetEnabled(false);
  const double counter_disabled_ns = TimeCounterSingle(counter);
  registry.SetEnabled(true);

  std::printf("counter   : %.1f ns/op single, %.1f ns/op x%d threads, "
              "%.2f ns/op disabled\n",
              counter_ns, counter_ns_8t, kHammerThreads,
              counter_disabled_ns);
  std::printf("histogram : %.1f ns/op single, %.1f ns/op x%d threads\n",
              histogram_ns, histogram_ns_8t, kHammerThreads);

  obs::Recorder& recorder = obs::Recorder::Global();
  recorder.SetEnabled(true);
  const double recorder_ns = TimeRecorderSingle(&recorder);
  const double recorder_ns_8t = TimeRecorderHammer(&recorder);
  recorder.SetEnabled(false);
  const double recorder_disabled_ns = TimeRecorderSingle(&recorder);
  recorder.SetEnabled(true);
  recorder.Reset();
  std::printf("recorder  : %.1f ns/op single, %.1f ns/op x%d threads, "
              "%.2f ns/op disabled\n",
              recorder_ns, recorder_ns_8t, kHammerThreads,
              recorder_disabled_ns);

  const bool quantiles_accurate = QuantilesAccurate();
  std::printf("quantiles : p50/p90/p99 within one bucket of exact: %s\n",
              quantiles_accurate ? "yes" : "NO (BUG)");

  // Overhead gate: alternating enabled/disabled serve waves; the median
  // ratio keeps one noisy wave from deciding the verdict. The flight
  // recorder records through every wave — the budget is measured with the
  // always-on subsystem on, exactly as production runs.
  std::vector<double> ratios;
  std::vector<double> enabled_walls;
  std::vector<double> disabled_walls;
  bool waves_ok = true;
  for (int p = 0; p < pairs && waves_ok; ++p) {
    registry.Reset();
    registry.SetEnabled(true);
    const double enabled = ServeWave(jobs, rows, threads);
    registry.SetEnabled(false);
    const double disabled = ServeWave(jobs, rows, threads);
    registry.SetEnabled(true);
    waves_ok = enabled > 0.0 && disabled > 0.0;
    if (!waves_ok) break;
    enabled_walls.push_back(enabled);
    disabled_walls.push_back(disabled);
    ratios.push_back(enabled / disabled);
    std::printf("pair %d    : enabled %.3fs, disabled %.3fs, ratio %.4f\n",
                p + 1, enabled, disabled, enabled / disabled);
  }

  double median_ratio = 0.0;
  double enabled_median = -1.0;
  double disabled_median = -1.0;
  if (waves_ok) {
    auto median = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    median_ratio = median(ratios);
    enabled_median = median(enabled_walls);
    disabled_median = median(disabled_walls);
  }
  const double overhead = median_ratio - 1.0;
  const bool within_budget = waves_ok && overhead < 0.03;
  std::printf("overhead  : median ratio %.4f (%.2f%%), budget 3%%: %s\n",
              median_ratio, overhead * 100,
              within_budget ? "within" : "EXCEEDED");

  const std::string json_path = bench::ResultsDir() + "/BENCH_obs.json";
  json::Value summary = json::Value::Object();
  summary.Set("bench", "obs_overhead");
  summary.Set("hardware_cores", static_cast<long long>(cores));
  summary.Set("threads", threads);
  summary.Set("pairs", pairs);
  summary.Set("jobs", jobs);
  summary.Set("rows_per_slice", rows);
  summary.Set("counter_ns_per_op", counter_ns);
  summary.Set("counter_ns_per_op_8t", counter_ns_8t);
  summary.Set("counter_disabled_ns_per_op", counter_disabled_ns);
  summary.Set("histogram_ns_per_op", histogram_ns);
  summary.Set("histogram_ns_per_op_8t", histogram_ns_8t);
  summary.Set("recorder_ns_per_op", recorder_ns);
  summary.Set("recorder_ns_per_op_8t", recorder_ns_8t);
  summary.Set("recorder_disabled_ns_per_op", recorder_disabled_ns);
  summary.Set("recorder_always_on", recorder.Enabled());
  summary.Set("quantiles_accurate", quantiles_accurate);
  summary.Set("serve_enabled_wall_seconds", enabled_median);
  summary.Set("serve_disabled_wall_seconds", disabled_median);
  summary.Set("obs_overhead_ratio", median_ratio);
  summary.Set("obs_overhead_within_budget", within_budget);
  ST_CHECK_OK(bench::WriteBenchJson(json_path, summary));
  std::printf("Summary written to %s\n", json_path.c_str());
  return (quantiles_accurate && within_budget) ? 0 : 1;
}
