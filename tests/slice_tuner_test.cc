// Tests for the SliceTuner facade: validation, suggestion, acquisition
// paths, and evaluation.

#include <gtest/gtest.h>

#include "core/slice_tuner.h"
#include "data/synthetic.h"

namespace slicetuner {
namespace {

struct Fixture {
  DatasetPreset preset = MakeCensusLike();
  Dataset train;
  Dataset validation;
  std::unique_ptr<SyntheticPool> source;

  Fixture() {
    Rng rng(33);
    train = preset.generator.GenerateDataset({120, 120, 120, 120}, &rng);
    validation =
        preset.generator.GenerateDataset({100, 100, 100, 100}, &rng);
    source = std::make_unique<SyntheticPool>(
        &preset.generator, std::make_unique<TableCost>(preset.costs),
        rng.ForkSeed(0));
  }

  SliceTunerOptions Options() const {
    SliceTunerOptions o;
    o.model_spec = preset.model_spec;
    o.trainer = preset.trainer;
    o.curve_options.num_points = 4;
    o.curve_options.num_curve_draws = 1;
    o.curve_options.seed = 13;
    o.lambda = 1.0;
    return o;
  }
};

TEST(SliceTunerTest, CreateValidatesInputs) {
  Fixture f;
  EXPECT_TRUE(
      SliceTuner::Create(f.train, f.validation, 4, f.Options()).ok());
  EXPECT_FALSE(
      SliceTuner::Create(Dataset(12), f.validation, 4, f.Options()).ok());
  EXPECT_FALSE(
      SliceTuner::Create(f.train, Dataset(12), 4, f.Options()).ok());
  EXPECT_FALSE(
      SliceTuner::Create(f.train, f.validation, 0, f.Options()).ok());
  // Slice ids out of range.
  EXPECT_EQ(SliceTuner::Create(f.train, f.validation, 2, f.Options())
                .status()
                .code(),
            StatusCode::kOutOfRange);
  // Model/data dim mismatch.
  SliceTunerOptions bad = f.Options();
  bad.model_spec.input_dim = 99;
  EXPECT_FALSE(SliceTuner::Create(f.train, f.validation, 4, bad).ok());
}

TEST(SliceTunerTest, EmptySliceIsHandledCleanlyNotCrashed) {
  // A declared slice with zero training rows (e.g. a CSV that never
  // mentions slice id 1) must flow through creation, curve estimation, and
  // evaluation with clean statuses — the empty slice's curve is simply
  // flagged unreliable.
  Fixture f;
  Rng rng(44);
  Dataset sparse =
      f.preset.generator.GenerateDataset({120, 0, 120, 120}, &rng);
  auto tuner = SliceTuner::Create(sparse, f.validation, 4, f.Options());
  ASSERT_TRUE(tuner.ok()) << tuner.status();
  EXPECT_EQ(tuner->SliceSizes()[1], 0u);

  const auto curves = tuner->EstimateCurves();
  ASSERT_TRUE(curves.ok()) << curves.status();
  EXPECT_FALSE(curves->slices[1].reliable);
  EXPECT_TRUE(curves->slices[0].reliable);

  const auto metrics = tuner->Evaluate(/*seed=*/7);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics->overall_loss, 0.0);
}

TEST(SliceTunerTest, NegativeSliceIdIsRejected) {
  Fixture f;
  Dataset train = f.train;
  Example bad;
  bad.features.assign(train.dim(), 0.0);
  bad.label = 0;
  bad.slice = -1;
  ASSERT_TRUE(train.Append(bad).ok());
  EXPECT_EQ(SliceTuner::Create(train, f.validation, 4, f.Options())
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(SliceTunerTest, SliceSizesReflectTrainData) {
  Fixture f;
  auto tuner = SliceTuner::Create(f.train, f.validation, 4, f.Options());
  ASSERT_TRUE(tuner.ok());
  const auto sizes = tuner->SliceSizes();
  ASSERT_EQ(sizes.size(), 4u);
  for (size_t s : sizes) EXPECT_EQ(s, 120u);
}

TEST(SliceTunerTest, EstimateCurvesProducesAllSlices) {
  Fixture f;
  auto tuner = SliceTuner::Create(f.train, f.validation, 4, f.Options());
  ASSERT_TRUE(tuner.ok());
  const auto curves = tuner->EstimateCurves();
  ASSERT_TRUE(curves.ok());
  EXPECT_EQ(curves->slices.size(), 4u);
}

TEST(SliceTunerTest, SuggestReturnsAffordablePlan) {
  Fixture f;
  auto tuner = SliceTuner::Create(f.train, f.validation, 4, f.Options());
  ASSERT_TRUE(tuner.ok());
  UniformCost cost(1.0);
  const auto plan = tuner->Suggest(cost, 200.0);
  ASSERT_TRUE(plan.ok());
  long long total = 0;
  for (long long d : plan->examples) total += d;
  EXPECT_LE(total, 200);
  // Suggest must not mutate the training data.
  EXPECT_EQ(tuner->train().size(), 480u);
}

TEST(SliceTunerTest, AcquireGrowsTrainingData) {
  Fixture f;
  auto tuner = SliceTuner::Create(f.train, f.validation, 4, f.Options());
  ASSERT_TRUE(tuner.ok());
  IterativeOptions it;
  it.curve_options.num_points = 4;
  it.max_iterations = 5;
  const auto result = tuner->Acquire(f.source.get(), 200.0, it);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(tuner->train().size(), 480u);
}

TEST(SliceTunerTest, AcquireBaselineUniform) {
  Fixture f;
  auto tuner = SliceTuner::Create(f.train, f.validation, 4, f.Options());
  ASSERT_TRUE(tuner.ok());
  const auto result = tuner->AcquireBaseline(f.source.get(), 400.0,
                                             BaselineKind::kUniform);
  ASSERT_TRUE(result.ok());
  for (long long a : result->acquired) EXPECT_EQ(a, 100);
  EXPECT_EQ(tuner->train().size(), 880u);
}

TEST(SliceTunerTest, EvaluateProducesFiniteMetrics) {
  Fixture f;
  auto tuner = SliceTuner::Create(f.train, f.validation, 4, f.Options());
  ASSERT_TRUE(tuner.ok());
  const auto metrics = tuner->Evaluate(77);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->overall_loss, 0.0);
  EXPECT_LT(metrics->overall_loss, 5.0);
  EXPECT_GE(metrics->avg_eer, 0.0);
  EXPECT_GE(metrics->max_eer, metrics->avg_eer);
}

TEST(SliceTunerTest, AcquisitionImprovesLossOverOriginal) {
  // End-to-end sanity: acquiring 600 examples with the tuner should not make
  // the model worse than training on the initial data.
  Fixture f;
  auto original =
      SliceTuner::Create(f.train, f.validation, 4, f.Options());
  ASSERT_TRUE(original.ok());
  const auto before = original->Evaluate(5);
  ASSERT_TRUE(before.ok());

  auto tuner = SliceTuner::Create(f.train, f.validation, 4, f.Options());
  ASSERT_TRUE(tuner.ok());
  IterativeOptions it;
  it.max_iterations = 6;
  const auto run = tuner->Acquire(f.source.get(), 600.0, it);
  ASSERT_TRUE(run.ok());
  const auto after = tuner->Evaluate(5);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->overall_loss, before->overall_loss + 0.02);
}

}  // namespace
}  // namespace slicetuner
