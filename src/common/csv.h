// CSV writer used by benches to emit machine-readable series next to the
// human-readable tables (paper figures are regenerated from these files).

#ifndef SLICETUNER_COMMON_CSV_H_
#define SLICETUNER_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace slicetuner {

/// Streams rows to a CSV file. Fields containing commas/quotes/newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter() = default;

  /// Opens `path` for writing (truncates). Must be called before WriteRow.
  Status Open(const std::string& path);

  /// Writes one row of string fields.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles with the given precision.
  Status WriteNumericRow(const std::vector<double>& values,
                         int precision = 6);

  /// Flushes and closes the stream.
  Status Close();

  bool is_open() const { return out_.is_open(); }

  /// Escapes a single CSV field (exposed for testing).
  static std::string EscapeField(const std::string& field);

 private:
  std::ofstream out_;
};

}  // namespace slicetuner

#endif  // SLICETUNER_COMMON_CSV_H_
