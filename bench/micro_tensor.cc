// Tensor-kernel microbenchmark: naive reference vs. cache-blocked (and
// ParallelFor-threaded) GEMM kernels, the fused bias epilogue, the fused
// softmax–cross-entropy, and the matrix-at-a-time trainer.
//
// Every blocked kernel is validated against its naive reference on the
// benchmark inputs (bit-identical output is the contract) and the threaded
// run is validated against the single-threaded run; any mismatch makes the
// bench exit non-zero so CI cannot pass on a broken kernel. A summary is
// written to results/BENCH_tensor.json for the benchmark-regression gate.
//
// Usage: bench_micro_tensor [--threads=N] [--repeats=R] [--size=N]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace slicetuner {
namespace {

using KernelFn = void (*)(const Matrix&, const Matrix&, Matrix*);

bool g_ok = true;

void Check(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what);
    g_ok = false;
  }
}

double TimeKernel(KernelFn fn, const Matrix& a, const Matrix& b, Matrix* out,
                  int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch timer;
    fn(a, b, out);
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

struct KernelResult {
  double naive_seconds = 0.0;
  double blocked_seconds = 0.0;   // 1 intra-op lane
  double threaded_seconds = 0.0;  // --threads lanes
};

// Times `naive` vs `blocked` at 1 and at `threads` lanes and checks that all
// three produce identical bits.
KernelResult RunKernel(const char* label, KernelFn naive, KernelFn blocked,
                       const Matrix& a, const Matrix& b, int threads,
                       int repeats) {
  Matrix ref, one, many;
  KernelResult r;
  r.naive_seconds = TimeKernel(naive, a, b, &ref, repeats);
  SetTensorOpThreads(1);
  r.blocked_seconds = TimeKernel(blocked, a, b, &one, repeats);
  SetTensorOpThreads(threads);
  r.threaded_seconds = TimeKernel(blocked, a, b, &many, repeats);
  SetTensorOpThreads(0);
  Check(MaxAbsDiff(ref, one) == 0.0, "blocked kernel != naive reference");
  Check(one == many, "threaded kernel bits != single-threaded bits");
  std::printf("%-12s naive %.4fs | blocked(x1) %.4fs (%.2fx) | "
              "blocked(x%d) %.4fs (%.2fx)\n",
              label, r.naive_seconds, r.blocked_seconds,
              r.naive_seconds / r.blocked_seconds, threads,
              r.threaded_seconds, r.naive_seconds / r.threaded_seconds);
  return r;
}

}  // namespace
}  // namespace slicetuner

int main(int argc, char** argv) {
  using namespace slicetuner;
  const int threads = bench::ParseThreadsFlag(argc, argv, /*default=*/0);
  const int repeats = std::max(
      1, bench::ParseIntFlag(argc, argv, "--repeats=", /*default=*/3));
  const size_t size = static_cast<size_t>(std::max(
      32, bench::ParseIntFlag(argc, argv, "--size=", /*default=*/512)));
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("=== Tensor microbenchmark: %zux%zu kernels ===\n", size, size);
  std::printf("hardware cores: %u, intra-op lanes: %s, repeats: %d\n", cores,
              threads == 0 ? "all" : std::to_string(threads).c_str(),
              repeats);

  Rng rng(7);
  Matrix a(size, size), b(size, size);
  a.FillNormal(&rng, 1.0);
  b.FillNormal(&rng, 1.0);

  const KernelResult gemm = RunKernel("GEMM", MatMulNaive, MatMul, a, b,
                                      threads, repeats);
  const KernelResult gemm_tb =
      RunKernel("GEMM a*b^T", MatMulTransposedBNaive, MatMulTransposedB, a, b,
                threads, repeats);
  const KernelResult gemm_ta =
      RunKernel("GEMM a^T*b", MatMulTransposedANaive, MatMulTransposedA, a, b,
                threads, repeats);

  // Fused bias epilogue vs. GEMM + broadcast pass.
  Matrix bias(1, size);
  bias.FillNormal(&rng, 1.0);
  Matrix unfused_out, fused_out;
  double unfused_best = 1e300, fused_best = 1e300;
  SetTensorOpThreads(threads);
  for (int r = 0; r < repeats; ++r) {
    Stopwatch t1;
    MatMul(a, b, &unfused_out);
    AddRowBroadcast(&unfused_out, bias);
    unfused_best = std::min(unfused_best, t1.ElapsedSeconds());
    Stopwatch t2;
    MatMulBias(a, b, bias, &fused_out);
    fused_best = std::min(fused_best, t2.ElapsedSeconds());
  }
  SetTensorOpThreads(0);
  Check(unfused_out == fused_out, "MatMulBias bits != MatMul+AddRowBroadcast");
  std::printf("%-12s unfused %.4fs | fused %.4fs (%.2fx)\n", "bias epilogue",
              unfused_best, fused_best, unfused_best / fused_best);

  // Fused softmax–cross-entropy forward/backward (4096 x 10 logits).
  Matrix logits(4096, 10);
  logits.FillNormal(&rng, 2.0);
  std::vector<int> labels(logits.rows());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(rng.UniformInt(uint64_t{10}));
  }
  SoftmaxCrossEntropy loss;
  Matrix grad;
  double loss_best = 1e300;
  double loss_value = 0.0;
  for (int r = 0; r < repeats * 10; ++r) {
    Stopwatch t;
    loss_value = loss.Forward(logits, labels);
    loss.Backward(&grad);
    loss_best = std::min(loss_best, t.ElapsedSeconds());
  }
  Check(std::isfinite(loss_value), "softmax-xent loss not finite");
  std::printf("%-12s fused fwd+bwd %.5fs (loss %.4f)\n", "softmax-xent",
              loss_best, loss_value);

  // End-to-end minibatch training: 2000 x 16 blobs through a 16-64-64-2 MLP
  // (the shape of a curve-estimation training), matrix-at-a-time batches.
  Matrix train_x(2000, 16);
  std::vector<int> train_y(train_x.rows());
  for (size_t i = 0; i < train_x.rows(); ++i) {
    const int label = static_cast<int>(i % 2);
    for (size_t d = 0; d < train_x.cols(); ++d) {
      train_x(i, d) = rng.Normal(label == 0 ? -1.0 : 1.0, 1.0);
    }
    train_y[i] = label;
  }
  double train_best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Rng model_rng(11);
    Model model = BuildModel(ModelSpec{16, 2, {64, 64}, 0, 32}, &model_rng);
    TrainerOptions opts;
    opts.epochs = 5;
    opts.seed = 13;
    Stopwatch t;
    const auto log = Train(&model, train_x, train_y, opts);
    train_best = std::min(train_best, t.ElapsedSeconds());
    Check(log.ok(), "trainer returned an error");
  }
  std::printf("%-12s 5 epochs of 2000x16 MLP(64,64): %.4fs\n", "trainer",
              train_best);

  const double gemm_speedup = gemm.naive_seconds / gemm.threaded_seconds;
  const std::string json_path = bench::ResultsDir() + "/BENCH_tensor.json";
  ST_CHECK_OK(bench::WriteBenchJson(
      json_path,
      {{"bench", "\"tensor_kernels\""},
       {"size", StrFormat("%zu", size)},
       {"hardware_cores", StrFormat("%u", cores)},
       {"threads", StrFormat("%d", threads)},
       {"repeats", StrFormat("%d", repeats)},
       {"gemm_naive_seconds", FormatDouble(gemm.naive_seconds, 4)},
       {"gemm_blocked_seconds", FormatDouble(gemm.blocked_seconds, 4)},
       {"gemm_threaded_seconds", FormatDouble(gemm.threaded_seconds, 4)},
       {"gemm_speedup", FormatDouble(gemm_speedup, 3)},
       {"gemm_tb_naive_seconds", FormatDouble(gemm_tb.naive_seconds, 4)},
       {"gemm_tb_threaded_seconds",
        FormatDouble(gemm_tb.threaded_seconds, 4)},
       {"gemm_tb_speedup",
        FormatDouble(gemm_tb.naive_seconds / gemm_tb.threaded_seconds, 3)},
       {"gemm_ta_naive_seconds", FormatDouble(gemm_ta.naive_seconds, 4)},
       {"gemm_ta_threaded_seconds",
        FormatDouble(gemm_ta.threaded_seconds, 4)},
       {"gemm_ta_speedup",
        FormatDouble(gemm_ta.naive_seconds / gemm_ta.threaded_seconds, 3)},
       {"fused_bias_seconds", FormatDouble(fused_best, 4)},
       {"softmax_xent_seconds", FormatDouble(loss_best, 5)},
       {"trainer_seconds", FormatDouble(train_best, 4)},
       {"kernels_bit_identical", g_ok ? "true" : "false"}}));
  std::printf("Summary written to %s\n", json_path.c_str());
  if (!g_ok) {
    std::fprintf(stderr, "tensor kernel validation FAILED\n");
    return 1;
  }
  return 0;
}
