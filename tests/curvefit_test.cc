// Tests for curve fitting: Levenberg-Marquardt recovers known parameters,
// the power-law fitter handles weights/noise/degenerate input, and the
// alternative curve models evaluate and differentiate correctly.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "curvefit/curve_models.h"
#include "curvefit/fitter.h"
#include "curvefit/levenberg_marquardt.h"
#include "curvefit/power_law.h"

namespace slicetuner {
namespace {

// ---------------------------------------------------------- PowerLawCurve

TEST(PowerLawCurveTest, EvalMatchesFormula) {
  PowerLawCurve c{2.0, 0.5};
  EXPECT_NEAR(c.Eval(4.0), 1.0, 1e-12);
  EXPECT_NEAR(c.Eval(100.0), 0.2, 1e-12);
}

TEST(PowerLawCurveTest, EvalClampsBelowOne) {
  PowerLawCurve c{2.0, 0.5};
  EXPECT_EQ(c.Eval(0.0), c.Eval(1.0));
  EXPECT_EQ(c.Eval(-5.0), 2.0);
}

TEST(PowerLawCurveTest, DerivativeIsNegative) {
  PowerLawCurve c{2.0, 0.5};
  EXPECT_LT(c.Derivative(10.0), 0.0);
  // Matches numeric derivative.
  const double eps = 1e-5;
  const double numeric = (c.Eval(10.0 + eps) - c.Eval(10.0 - eps)) / (2 * eps);
  EXPECT_NEAR(c.Derivative(10.0), numeric, 1e-8);
}

TEST(PowerLawCurveTest, InverseEvalRoundTrips) {
  PowerLawCurve c{3.0, 0.4};
  const double x = 250.0;
  EXPECT_NEAR(c.InverseEval(c.Eval(x)), x, 1e-6);
  // Unreachable loss -> sentinel.
  EXPECT_GT(c.InverseEval(0.0), 1e17);
}

TEST(PowerLawCurveTest, ToStringFormat) {
  PowerLawCurve c{2.894, 0.204};
  EXPECT_EQ(c.ToString(), "y = 2.894x^-0.204");
}

// ------------------------------------------------------------ curve models

TEST(CurveModelsTest, PowerLawEvalAndGradient) {
  PowerLawModel m;
  const std::vector<double> p = {2.0, 0.5};
  EXPECT_NEAR(m.Eval(4.0, p), 1.0, 1e-12);
  double grad[2];
  m.Gradient(4.0, p, grad);
  // d/db = x^-a, d/da = -b x^-a ln x.
  EXPECT_NEAR(grad[0], 0.5, 1e-12);
  EXPECT_NEAR(grad[1], -2.0 * 0.5 * std::log(4.0), 1e-12);
}

// Verifies each model's analytic gradient against finite differences.
class ModelGradientTest : public testing::TestWithParam<int> {};

TEST_P(ModelGradientTest, AnalyticMatchesNumeric) {
  std::unique_ptr<ParametricModel> model;
  std::vector<double> p;
  switch (GetParam()) {
    case 0:
      model = std::make_unique<PowerLawModel>();
      p = {2.0, 0.3};
      break;
    case 1:
      model = std::make_unique<PowerLawFloorModel>();
      p = {2.0, 0.3, 0.2};
      break;
    case 2:
      model = std::make_unique<ExponentialDecayModel>();
      p = {1.5, 0.01, 0.1};
      break;
    default:
      model = std::make_unique<LogarithmicModel>();
      p = {0.2, 3.0};
      break;
  }
  const double xs[] = {2.0, 10.0, 100.0};
  std::vector<double> grad(model->num_params());
  const double eps = 1e-6;
  for (double x : xs) {
    model->Gradient(x, p, grad.data());
    for (size_t k = 0; k < model->num_params(); ++k) {
      std::vector<double> pp = p;
      pp[k] += eps;
      const double up = model->Eval(x, pp);
      pp[k] = p[k] - eps;
      const double down = model->Eval(x, pp);
      EXPECT_NEAR(grad[k], (up - down) / (2 * eps), 1e-5)
          << model->name() << " param " << k << " at x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelGradientTest,
                         testing::Values(0, 1, 2, 3));

TEST(CurveModelsTest, ClampKeepsParamsFeasible) {
  PowerLawModel m;
  std::vector<double> p = {-5.0, 100.0};
  m.ClampParams(&p);
  EXPECT_GT(p[0], 0.0);
  EXPECT_LE(p[1], 5.0);
}

TEST(CurveModelsTest, InitialGuessFromLogLog) {
  // Exact power-law data: log-log init should be near the truth.
  PowerLawModel m;
  std::vector<double> xs, ys;
  for (double x : {10.0, 30.0, 100.0, 300.0}) {
    xs.push_back(x);
    ys.push_back(2.5 * std::pow(x, -0.35));
  }
  const auto p0 = m.InitialGuess(xs, ys);
  EXPECT_NEAR(p0[0], 2.5, 0.05);
  EXPECT_NEAR(p0[1], 0.35, 0.01);
}

// ---------------------------------------------------- Levenberg-Marquardt

TEST(LmTest, RecoversExactPowerLaw) {
  PowerLawModel model;
  std::vector<double> xs, ys;
  for (double x = 10.0; x <= 1000.0; x *= 1.6) {
    xs.push_back(x);
    ys.push_back(3.2 * std::pow(x, -0.42));
  }
  const auto fit =
      LevenbergMarquardt(model, xs, ys, {}, model.InitialGuess(xs, ys));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->params[0], 3.2, 1e-4);
  EXPECT_NEAR(fit->params[1], 0.42, 1e-5);
  EXPECT_LT(fit->sse, 1e-10);
}

TEST(LmTest, RecoversPowerLawWithFloor) {
  PowerLawFloorModel model;
  std::vector<double> xs, ys;
  for (double x = 10.0; x <= 30000.0; x *= 1.8) {
    xs.push_back(x);
    ys.push_back(5.0 * std::pow(x, -0.5) + 0.25);
  }
  const auto fit =
      LevenbergMarquardt(model, xs, ys, {}, model.InitialGuess(xs, ys));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->params[0], 5.0, 0.1);
  EXPECT_NEAR(fit->params[1], 0.5, 0.02);
  EXPECT_NEAR(fit->params[2], 0.25, 0.02);
}

TEST(LmTest, RecoversNoisyPowerLawApproximately) {
  Rng rng(1);
  PowerLawModel model;
  std::vector<double> xs, ys;
  for (double x = 20.0; x <= 2000.0; x *= 1.3) {
    xs.push_back(x);
    ys.push_back(2.0 * std::pow(x, -0.3) * (1.0 + rng.Normal(0.0, 0.03)));
  }
  const auto fit =
      LevenbergMarquardt(model, xs, ys, {}, model.InitialGuess(xs, ys));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->params[0], 2.0, 0.3);
  EXPECT_NEAR(fit->params[1], 0.3, 0.05);
}

TEST(LmTest, WeightsChangeTheFit) {
  // Two clusters of inconsistent points; upweighting one pulls the fit
  // toward it.
  PowerLawModel model;
  const std::vector<double> xs = {10.0, 20.0, 400.0, 800.0};
  const std::vector<double> ys = {1.0, 0.9, 0.8, 0.79};
  const std::vector<double> w_small = {100.0, 100.0, 1.0, 1.0};
  const std::vector<double> w_large = {1.0, 1.0, 100.0, 100.0};
  const auto fit_small = LevenbergMarquardt(model, xs, ys, w_small,
                                            model.InitialGuess(xs, ys));
  const auto fit_large = LevenbergMarquardt(model, xs, ys, w_large,
                                            model.InitialGuess(xs, ys));
  ASSERT_TRUE(fit_small.ok());
  ASSERT_TRUE(fit_large.ok());
  // Residuals on the emphasized cluster should be smaller in each case.
  const double r_small = std::fabs(
      ys[0] - model.Eval(xs[0], fit_small->params));
  const double r_small_other = std::fabs(
      ys[0] - model.Eval(xs[0], fit_large->params));
  EXPECT_LE(r_small, r_small_other + 1e-9);
}

TEST(LmTest, RejectsDegenerateInput) {
  PowerLawModel model;
  EXPECT_FALSE(
      LevenbergMarquardt(model, {1.0}, {1.0}, {}, {1.0, 0.1}).ok());
  EXPECT_FALSE(LevenbergMarquardt(model, {1.0, 2.0}, {1.0}, {}, {1.0, 0.1})
                   .ok());
  EXPECT_FALSE(LevenbergMarquardt(model, {1.0, 2.0}, {1.0, 1.0}, {},
                                  {1.0})
                   .ok());
  const double nan = std::nan("");
  EXPECT_FALSE(LevenbergMarquardt(model, {1.0, nan}, {1.0, 1.0}, {},
                                  {1.0, 0.1})
                   .ok());
  EXPECT_FALSE(LevenbergMarquardt(model, {1.0, 2.0}, {1.0, 1.0},
                                  {-1.0, 1.0}, {1.0, 0.1})
                   .ok());
}

TEST(LmTest, ExponentialModelFitsItsOwnData) {
  ExponentialDecayModel model;
  std::vector<double> xs, ys;
  for (double x = 0.0; x <= 500.0; x += 50.0) {
    xs.push_back(x + 1.0);
    ys.push_back(2.0 * std::exp(-0.01 * (x + 1.0)) + 0.3);
  }
  const auto fit =
      LevenbergMarquardt(model, xs, ys, {}, model.InitialGuess(xs, ys));
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->sse, 1e-6);
}

// ------------------------------------------------------------------ Fitter

std::vector<CurvePoint> PowerLawPoints(double b, double a, double noise,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<CurvePoint> points;
  for (double x = 20.0; x <= 2000.0; x *= 1.45) {
    points.push_back(
        CurvePoint{x, b * std::pow(x, -a) * (1.0 + rng.Normal(0.0, noise))});
  }
  return points;
}

TEST(FitterTest, FitsCleanCurve) {
  const auto fit = FitPowerLaw(PowerLawPoints(2.9, 0.2, 0.0, 1));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->b, 2.9, 0.01);
  EXPECT_NEAR(fit->a, 0.2, 0.002);
}

TEST(FitterTest, SkipsInvalidPoints) {
  auto points = PowerLawPoints(2.0, 0.3, 0.0, 2);
  points.push_back(CurvePoint{-5.0, 1.0});
  points.push_back(CurvePoint{100.0, -1.0});
  points.push_back(CurvePoint{100.0, std::nan("")});
  const auto fit = FitPowerLaw(points);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->a, 0.3, 0.01);
}

TEST(FitterTest, FailsOnTooFewPoints) {
  EXPECT_FALSE(FitPowerLaw({CurvePoint{10.0, 1.0}}).ok());
  EXPECT_FALSE(FitPowerLaw({}).ok());
  // All-invalid points also fail.
  EXPECT_FALSE(
      FitPowerLaw({CurvePoint{-1.0, 1.0}, CurvePoint{2.0, -3.0}}).ok());
}

TEST(FitterTest, AveragedFitIsCloseToPlainOnCleanData) {
  const auto points = PowerLawPoints(2.0, 0.25, 0.0, 3);
  FitOptions options;
  options.num_draws = 5;
  const auto avg = FitPowerLawAveraged(points, options);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->b, 2.0, 0.05);
  EXPECT_NEAR(avg->a, 0.25, 0.01);
}

TEST(FitterTest, AveragedFitHandlesNoise) {
  const auto points = PowerLawPoints(2.0, 0.25, 0.15, 4);
  FitOptions options;
  options.num_draws = 7;
  const auto avg = FitPowerLawAveraged(points, options);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->a, 0.25, 0.12);
}

TEST(FitterTest, AveragedFitDeterministicGivenSeed) {
  const auto points = PowerLawPoints(2.0, 0.25, 0.1, 5);
  FitOptions options;
  options.seed = 42;
  const auto a1 = FitPowerLawAveraged(points, options);
  const auto a2 = FitPowerLawAveraged(points, options);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_DOUBLE_EQ(a1->b, a2->b);
  EXPECT_DOUBLE_EQ(a1->a, a2->a);
}

TEST(FitterTest, CurveLogR2HighForGoodFit) {
  const auto points = PowerLawPoints(2.0, 0.3, 0.0, 6);
  const auto fit = FitPowerLaw(points);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(CurveLogR2(*fit, points), 0.999);
  // A wrong curve scores poorly.
  PowerLawCurve wrong{10.0, 1.5};
  EXPECT_LT(CurveLogR2(wrong, points), 0.5);
}

// Property sweep: the fitter recovers (b, a) across a grid of true values.
struct FitterParam {
  double b;
  double a;
};

class FitterRecoveryTest : public testing::TestWithParam<FitterParam> {};

TEST_P(FitterRecoveryTest, RecoversParameters) {
  const FitterParam param = GetParam();
  const auto fit = FitPowerLaw(PowerLawPoints(param.b, param.a, 0.01, 77));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->b, param.b, 0.15 * param.b + 0.05);
  EXPECT_NEAR(fit->a, param.a, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FitterRecoveryTest,
    testing::Values(FitterParam{0.5, 0.1}, FitterParam{1.0, 0.2},
                    FitterParam{2.0, 0.4}, FitterParam{3.0, 0.6},
                    FitterParam{5.0, 0.9}, FitterParam{0.8, 0.05}));

}  // namespace
}  // namespace slicetuner
