#include "data/acquisition.h"

#include <algorithm>
#include <cmath>

namespace slicetuner {

SyntheticPool::SyntheticPool(const SyntheticGenerator* generator,
                             std::unique_ptr<CostFunction> cost,
                             uint64_t seed)
    : generator_(generator), cost_(std::move(cost)), rng_(seed) {}

Dataset SyntheticPool::Acquire(int slice, size_t count) {
  Dataset out(generator_->dim());
  for (size_t i = 0; i < count; ++i) {
    (void)out.Append(generator_->Generate(slice, &rng_));
  }
  return out;
}

double CrowdsourceStats::AvgTaskSeconds(int slice) const {
  const size_t s = static_cast<size_t>(slice);
  if (s >= tasks_submitted.size() || tasks_submitted[s] == 0) return 0.0;
  return total_task_seconds[s] / static_cast<double>(tasks_submitted[s]);
}

std::vector<double> CrowdsourceSimulator::CostsFromTaskTimes(
    const std::vector<double>& mean_seconds) {
  std::vector<double> costs(mean_seconds.size(), 1.0);
  if (mean_seconds.empty()) return costs;
  const double min_time =
      *std::min_element(mean_seconds.begin(), mean_seconds.end());
  for (size_t i = 0; i < mean_seconds.size(); ++i) {
    // Round to one decimal, as Table 1 reports (e.g., 104.6s / 67.6s -> 1.5).
    costs[i] = std::round(10.0 * mean_seconds[i] / min_time) / 10.0;
  }
  return costs;
}

CrowdsourceSimulator::CrowdsourceSimulator(const SyntheticGenerator* generator,
                                           CrowdsourceOptions options,
                                           uint64_t seed)
    : generator_(generator), options_(std::move(options)), rng_(seed) {
  const size_t n = static_cast<size_t>(generator_->num_slices());
  if (options_.mean_task_seconds.size() != n) {
    options_.mean_task_seconds.resize(n, 60.0);
  }
  cost_ = std::make_unique<TableCost>(
      CostsFromTaskTimes(options_.mean_task_seconds));
  stats_.total_task_seconds.assign(n, 0.0);
  stats_.tasks_submitted.assign(n, 0);
  stats_.duplicates_removed.assign(n, 0);
  stats_.mistakes_filtered.assign(n, 0);
  stats_.accepted.assign(n, 0);
}

Dataset CrowdsourceSimulator::Acquire(int slice, size_t count) {
  const size_t s = static_cast<size_t>(slice);
  Dataset out(generator_->dim());
  // Lognormal task time calibrated so the mean equals mean_task_seconds[s]:
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  const double sigma = options_.task_time_sigma;
  const double mu =
      std::log(std::max(options_.mean_task_seconds[s], 1e-6)) -
      0.5 * sigma * sigma;
  while (out.size() < count) {
    stats_.tasks_submitted[s] += 1;
    stats_.total_task_seconds[s] += rng_.LogNormal(mu, sigma);
    if (rng_.Bernoulli(options_.duplicate_rate)) {
      // Post-processing removes exact duplicates.
      stats_.duplicates_removed[s] += 1;
      continue;
    }
    if (rng_.Bernoulli(options_.mistake_rate)) {
      // Worker submitted the wrong demographic; filtered manually.
      stats_.mistakes_filtered[s] += 1;
      continue;
    }
    (void)out.Append(generator_->Generate(slice, &rng_));
    stats_.accepted[s] += 1;
  }
  return out;
}

}  // namespace slicetuner
