#include "load/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/status.h"
#include "common/trace_context.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace slicetuner {
namespace load {

namespace {

// Client-side metric handles, resolved once (docs/OBSERVABILITY.md
// "loadgen_*" catalog).
struct LoadMetrics {
  obs::Counter* submits;
  obs::Counter* submit_attempts;
  obs::Counter* sheds;
  obs::Counter* polls;
  obs::Counter* reconnects;
  obs::Counter* cancels;
  obs::Counter* interrupted;
  obs::Counter* stalled_streams;
  obs::Histogram* poll_ns;
  obs::Histogram* submit_to_done_ns;

  static LoadMetrics& Get() {
    static LoadMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      LoadMetrics lm;
      lm.submits = reg.counter("loadgen_submits_total");
      lm.submit_attempts = reg.counter("loadgen_submit_attempts_total");
      lm.sheds = reg.counter("loadgen_sheds_total");
      lm.polls = reg.counter("loadgen_polls_total");
      lm.reconnects = reg.counter("loadgen_reconnects_total");
      lm.cancels = reg.counter("loadgen_cancels_sent_total");
      lm.interrupted = reg.counter("loadgen_interrupted_total");
      lm.stalled_streams = reg.counter("loadgen_stalled_streams_total");
      lm.poll_ns = reg.histogram("loadgen_poll_ns");
      lm.submit_to_done_ns = reg.histogram("loadgen_submit_to_done_ns");
      return lm;
    }();
    return m;
  }
};

bool IsInterruptedError(const json::Value& snapshot) {
  return snapshot.GetString("error").find("interrupted by restart") !=
         std::string::npos;
}

}  // namespace

// One session's progress through its op list. Owned by exactly one driver
// thread after partitioning; no locking needed.
struct LoadDriver::SessionState {
  const SessionPlan* plan = nullptr;

  enum class Stage {
    kIdle,           // waiting for due_ms, then submit ops_[op_index]
    kProbe,          // submit hit a transport error: poll to learn its fate
    kAwaitTerminal,  // submitted; polling until a terminal state
    kDone,           // no ops left (or a terminal failure was recorded)
  };
  Stage stage = Stage::kIdle;

  size_t op_index = 0;
  uint64_t due_ms = 0;
  uint64_t next_poll_ms = 0;
  // Cancel scheduled against the in-flight op (kNoCancel = none pending).
  static constexpr uint64_t kNoCancel = ~0ULL;
  uint64_t cancel_at_ms = kNoCancel;
  bool cancel_sent = false;

  // Jobs the daemon must have completed once the current op finishes:
  // op_index 0 contributes 1, each append 1 more. Lets a probe decide
  // whether a transport-errored submit was actually admitted.
  long long expected_jobs = 0;

  uint64_t submit_ack_ns = 0;
  bool stalled_stream_opened = false;

  // Client-minted trace id for the in-flight op. Minted once per op (not
  // per attempt) so a submit that lands despite a transport error still
  // carries the id the echo check expects; cleared when the op advances.
  uint64_t op_trace_id = 0;

  // Daemon generation at the first acked op. A later ack in a different
  // generation means the warm curve cache was lost mid-session, so
  // post-restart refits take the cold bootstrap path and the closing
  // curves are no longer oracle-reproducible ("restart-span" taint).
  uint64_t ack_generation = 0;
  bool have_ack_generation = false;

  SessionOutcome outcome;

  void Taint(const std::string& reason) {
    if (!outcome.tainted) {
      outcome.tainted = true;
      outcome.taint_reason = reason;
    }
  }
};

// A driver thread's connection: lazily (re)established, marked dead on any
// transport error so the next call reconnects (after backoff) against the
// daemon's *current* port.
struct LoadDriver::ThreadConn {
  serve::ClientConnection conn;
  bool alive = false;
  bool ever_connected = false;
  uint64_t retry_at_ms = 0;
  std::function<int()>* port = nullptr;
  int io_timeout_ms = 10000;
  int backoff_ms = 50;
  uint64_t reconnects = 0;
  // Stream connections deliberately left unread (backpressure fodder);
  // kept open for the run's duration.
  std::vector<serve::ClientConnection> stalled;

  bool Ensure(uint64_t now_ms) {
    if (alive) return true;
    if (now_ms < retry_at_ms) return false;
    int p = (*port)();
    if (p > 0) {
      auto result = serve::ClientConnection::Connect(p, io_timeout_ms);
      if (result.ok()) {
        conn = std::move(result).value();
        alive = true;
        if (ever_connected) {
          ++reconnects;
          LoadMetrics::Get().reconnects->Add();
        }
        ever_connected = true;
        return true;
      }
    }
    retry_at_ms = now_ms + static_cast<uint64_t>(backoff_ms);
    return false;
  }

  Result<json::Value> Call(const serve::Request& request, uint64_t now_ms) {
    if (!Ensure(now_ms))
      return Status::ResourceExhausted("daemon unreachable");
    Result<json::Value> result = conn.Call(request, io_timeout_ms);
    if (!result.ok()) {
      conn.Close();
      alive = false;
      retry_at_ms = now_ms + static_cast<uint64_t>(backoff_ms);
    }
    return result;
  }
};

LoadDriver::LoadDriver(const Workload& workload, DriverOptions options)
    : workload_(workload), options_(std::move(options)) {}

LoadDriver::~LoadDriver() = default;

uint64_t LoadDriver::NowMs() const {
  return (obs::MonotonicNanos() - start_ns_) / 1000000ULL;
}

Result<LoadReport> LoadDriver::Run() {
  if (!options_.port)
    return Status::InvalidArgument("DriverOptions.port callback is required");
  if (options_.threads <= 0)
    return Status::InvalidArgument("threads must be positive");

  start_ns_ = obs::MonotonicNanos();
  states_.clear();
  states_.reserve(workload_.sessions.size());
  for (const auto& plan : workload_.sessions) {
    auto s = std::make_unique<SessionState>();
    s->plan = &plan;
    s->due_ms = static_cast<uint64_t>(plan.arrival_ms);
    s->outcome.name = plan.name;
    s->outcome.scenario = plan.scenario;
    states_.push_back(std::move(s));
  }

  const int threads =
      std::min<int>(options_.threads,
                    std::max<size_t>(size_t{1}, states_.size()));
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    std::vector<SessionState*> mine;
    for (size_t i = static_cast<size_t>(t); i < states_.size();
         i += static_cast<size_t>(threads))
      mine.push_back(states_[i].get());
    pool.emplace_back(&LoadDriver::ThreadMain, this, t, std::move(mine));
  }
  for (auto& th : pool) th.join();

  LoadReport report;
  report.wall_seconds =
      static_cast<double>(obs::MonotonicNanos() - start_ns_) / 1e9;
  report.all_terminal = true;
  report.trace_ids_echoed = true;
  for (const auto& s : states_) {
    SessionOutcome& o = s->outcome;
    // A session whose thread hit the deadline mid-op may still carry the
    // previous op's terminal state; report it honestly as unfinished.
    if (s->stage != SessionState::Stage::kDone) o.final_state = "unfinished";
    if (o.final_state == "done") {
      ++report.done;
      if (o.resubmitted_after_interrupt) report.restart_recovered = true;
      if (!o.tainted) {
        ++report.trace_checked;
        if (!o.trace_echoed) report.trace_ids_echoed = false;
      }
    } else if (o.final_state == "cancelled") {
      ++report.cancelled;
    } else if (o.final_state == "failed") {
      ++report.failed;
    } else {
      ++report.unfinished;
      report.all_terminal = false;
    }
    if (o.lost_after_ack) ++report.lost_after_ack;
    report.outcomes.push_back(o);
  }
  auto& m = LoadMetrics::Get();
  report.submits = m.submits->Value();
  report.submit_attempts = m.submit_attempts->Value();
  report.sheds = m.sheds->Value();
  report.polls = m.polls->Value();
  report.reconnects = m.reconnects->Value();
  report.cancels_sent = m.cancels->Value();
  report.interrupted = m.interrupted->Value();
  report.stalled_streams = m.stalled_streams->Value();
  return report;
}

void LoadDriver::ThreadMain(int thread_index,
                            std::vector<SessionState*> mine) {
  (void)thread_index;
  ThreadConn conn;
  conn.port = &options_.port;
  conn.io_timeout_ms = options_.io_timeout_ms;
  conn.backoff_ms = options_.reconnect_backoff_ms;

  const uint64_t deadline = static_cast<uint64_t>(options_.run_deadline_ms);
  while (true) {
    uint64_t now = NowMs();
    if (now >= deadline) break;
    bool any_live = false;
    bool progressed = false;
    for (SessionState* s : mine) {
      if (s->stage == SessionState::Stage::kDone) continue;
      any_live = true;
      if (now < s->due_ms) continue;
      StepSession(s, &conn, now);
      progressed = true;
      now = NowMs();
      if (now >= deadline) break;
    }
    if (!any_live) break;
    if (!progressed)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Stalled streams die with the thread; the server must have survived
  // them (that is the point).
  for (auto& c : conn.stalled) c.Close();
}

void LoadDriver::NoteAckGeneration(SessionState* s) {
  if (!options_.generation) return;
  const uint64_t gen = options_.generation();
  if (!s->have_ack_generation) {
    s->have_ack_generation = true;
    s->ack_generation = gen;
  } else if (gen != s->ack_generation) {
    s->Taint("restart-span");
    s->ack_generation = gen;
  }
}

void LoadDriver::StepSession(SessionState* s, ThreadConn* conn,
                             uint64_t now_ms) {
  switch (s->stage) {
    case SessionState::Stage::kIdle:
      HandleSubmit(s, conn, now_ms);
      break;
    case SessionState::Stage::kProbe:
      HandleProbe(s, conn, now_ms);
      break;
    case SessionState::Stage::kAwaitTerminal:
      HandleAwait(s, conn, now_ms);
      break;
    case SessionState::Stage::kDone:
      break;
  }
}

void LoadDriver::HandleSubmit(SessionState* s, ThreadConn* conn,
                              uint64_t now_ms) {
  const SessionOp& op = s->plan->ops[s->op_index];
  serve::Request request;
  request.type = serve::RequestType::kSubmitJob;
  request.job = op.job;
  if (s->op_trace_id == 0) s->op_trace_id = trace::MintTraceId();
  request.trace_id = trace::FormatTraceId(s->op_trace_id);

  LoadMetrics::Get().submit_attempts->Add();
  Result<json::Value> result = conn->Call(request, now_ms);
  if (!result.ok()) {
    // Transport trouble: the daemon may or may not have admitted the job
    // before the connection died. Probe before resubmitting so a duplicate
    // submit cannot double-run the op.
    s->stage = SessionState::Stage::kProbe;
    s->due_ms = now_ms + static_cast<uint64_t>(options_.reconnect_backoff_ms);
    return;
  }
  const json::Value& response = *result;
  if (serve::IsOkResponse(response)) {
    LoadMetrics::Get().submits->Add();
    s->outcome.acked_ever = true;
    NoteAckGeneration(s);
    s->submit_ack_ns = obs::MonotonicNanos();
    s->expected_jobs += 1;
    const SessionPlan& plan = *s->plan;
    if (s->op_index + 1 < plan.ops.size() &&
        plan.ops[s->op_index + 1].kind == OpKind::kCancel &&
        !s->cancel_sent) {
      s->cancel_at_ms =
          now_ms + static_cast<uint64_t>(plan.ops[s->op_index + 1].delay_ms);
    }
    s->stage = SessionState::Stage::kAwaitTerminal;
    s->next_poll_ms =
        now_ms + static_cast<uint64_t>(options_.poll_interval_ms);
    s->due_ms = s->next_poll_ms;
    if (plan.stalled_reader && !s->stalled_stream_opened)
      OpenStalledStream(s, conn);
    return;
  }
  const long long retry_after = response.GetInt("retry_after_ms", 0);
  const std::string code = response.GetString("code");
  if (retry_after > 0) {
    LoadMetrics::Get().sheds->Add();
    s->due_ms = now_ms + static_cast<uint64_t>(retry_after);
    return;
  }
  if (code == "AlreadyExists" || code == "FailedPrecondition") {
    // AlreadyExists: a previous attempt actually landed (or an append raced
    // a not-yet-terminal session) — adopt it and let polling sort it out.
    // FailedPrecondition: transient (e.g. resume of a non-terminal
    // session); retry shortly.
    if (code == "AlreadyExists") {
      s->outcome.acked_ever = true;
      NoteAckGeneration(s);
      s->expected_jobs += 1;
      s->stage = SessionState::Stage::kAwaitTerminal;
      s->next_poll_ms =
          now_ms + static_cast<uint64_t>(options_.poll_interval_ms);
    }
    s->due_ms = now_ms + static_cast<uint64_t>(options_.poll_interval_ms);
    return;
  }
  // Hard rejection (InvalidArgument...): a driver/compiler bug, not a
  // server fault. Record and stop the session.
  s->Taint("driver");
  s->outcome.final_state = "failed";
  s->stage = SessionState::Stage::kDone;
}

void LoadDriver::HandleProbe(SessionState* s, ThreadConn* conn,
                             uint64_t now_ms) {
  serve::Request request;
  request.type = serve::RequestType::kPoll;
  request.session = s->plan->name;
  Result<json::Value> result = conn->Call(request, now_ms);
  if (!result.ok()) {
    s->due_ms = now_ms + static_cast<uint64_t>(options_.reconnect_backoff_ms);
    return;
  }
  const json::Value& response = *result;
  if (!serve::IsOkResponse(response)) {
    if (response.GetString("code") == "NotFound") {
      if (s->outcome.acked_ever) {
        // An acked session vanished: sync-before-ack says this cannot
        // happen. Correctness failure.
        s->outcome.lost_after_ack = true;
        s->outcome.final_state = "failed";
        s->Taint("driver");
        s->stage = SessionState::Stage::kDone;
        return;
      }
      // Never admitted: resubmit the op.
      s->stage = SessionState::Stage::kIdle;
      s->due_ms = now_ms;
      return;
    }
    s->due_ms = now_ms + static_cast<uint64_t>(options_.poll_interval_ms);
    return;
  }
  // expected_jobs counts *acked* submits; the probed op is not among them
  // yet, so the op ran iff the daemon's job count went past expected_jobs.
  const std::string state = response.GetString("state");
  const long long jobs_run = response.GetInt("jobs_run", 0);
  if (state == "queued" || state == "running") {
    // The lost submit was admitted after all; adopt it.
    s->outcome.acked_ever = true;
    NoteAckGeneration(s);
    s->expected_jobs += 1;
    s->stage = SessionState::Stage::kAwaitTerminal;
    s->next_poll_ms =
        now_ms + static_cast<uint64_t>(options_.poll_interval_ms);
    s->due_ms = s->next_poll_ms;
    return;
  }
  if (jobs_run > s->expected_jobs ||
      (state == "cancelled" && IsInterruptedError(response))) {
    // Terminal with the op's job completed (or interrupted mid-flight):
    // treat like a normal terminal poll.
    s->outcome.acked_ever = true;
    NoteAckGeneration(s);
    s->expected_jobs += 1;
    ReachTerminal(s, response, state, now_ms);
    return;
  }
  // Terminal but our op never ran (e.g. submit lost before admission):
  // resubmit it.
  s->stage = SessionState::Stage::kIdle;
  s->due_ms = now_ms;
}

void LoadDriver::HandleAwait(SessionState* s, ThreadConn* conn,
                             uint64_t now_ms) {
  if (s->cancel_at_ms != SessionState::kNoCancel && !s->cancel_sent &&
      now_ms >= s->cancel_at_ms) {
    serve::Request request;
    request.type = serve::RequestType::kCancel;
    request.session = s->plan->name;
    Result<json::Value> result = conn->Call(request, now_ms);
    // A cancel that raced the session's terminal transition (or a dead
    // connection) is fine either way; one attempt is enough, and the
    // outcome is timing-dependent from here regardless.
    (void)result;
    s->cancel_sent = true;
    s->Taint("cancel");
    LoadMetrics::Get().cancels->Add();
    s->due_ms = now_ms;
    return;
  }
  if (now_ms < s->next_poll_ms) {
    s->due_ms = s->next_poll_ms;
    return;
  }
  serve::Request request;
  request.type = serve::RequestType::kPoll;
  request.session = s->plan->name;
  const uint64_t poll_start = obs::MonotonicNanos();
  Result<json::Value> result = conn->Call(request, now_ms);
  if (!result.ok()) {
    s->next_poll_ms =
        now_ms + static_cast<uint64_t>(options_.reconnect_backoff_ms);
    s->due_ms = s->next_poll_ms;
    return;
  }
  LoadMetrics::Get().polls->Add();
  LoadMetrics::Get().poll_ns->Record(obs::MonotonicNanos() - poll_start);
  const json::Value& response = *result;
  if (!serve::IsOkResponse(response)) {
    if (response.GetString("code") == "NotFound") {
      // Acked then forgotten across a restart: durability violation.
      s->outcome.lost_after_ack = true;
      s->outcome.final_state = "failed";
      s->Taint("driver");
      s->stage = SessionState::Stage::kDone;
      return;
    }
    s->next_poll_ms =
        now_ms + static_cast<uint64_t>(options_.poll_interval_ms);
    s->due_ms = s->next_poll_ms;
    return;
  }
  const std::string state = response.GetString("state");
  if (state == "queued" || state == "running") {
    s->next_poll_ms =
        now_ms + static_cast<uint64_t>(options_.poll_interval_ms);
    s->due_ms = s->next_poll_ms;
    return;
  }
  const long long jobs_run = response.GetInt("jobs_run", 0);
  if (state == "done" && jobs_run < s->expected_jobs) {
    // Still showing the previous job's terminal state; our freshly acked
    // resume has not started yet. Keep polling.
    s->next_poll_ms =
        now_ms + static_cast<uint64_t>(options_.poll_interval_ms);
    s->due_ms = s->next_poll_ms;
    return;
  }
  ReachTerminal(s, response, state, now_ms);
}

void LoadDriver::ReachTerminal(SessionState* s, const json::Value& snapshot,
                               const std::string& state, uint64_t now_ms) {
  if (state == "cancelled" && !s->cancel_sent && IsInterruptedError(snapshot)) {
    // A daemon restart interrupted the in-flight job; the restored session
    // is resumable. Resubmit the same op to exercise recovery. The admitted
    // job sequence now depends on kill timing, so the session leaves the
    // oracle set.
    LoadMetrics::Get().interrupted->Add();
    s->Taint("interrupted");
    s->outcome.resubmitted_after_interrupt = true;
    // Sync to the daemon's count; the resubmit's ack will add the +1 for
    // the new job (double-counting here leaves the await loop polling for
    // a job count the daemon can never reach).
    s->expected_jobs = snapshot.GetInt("jobs_run", 0);
    s->stage = SessionState::Stage::kIdle;
    s->due_ms = now_ms + static_cast<uint64_t>(options_.poll_interval_ms);
    return;
  }
  if (state == "done" && s->submit_ack_ns != 0) {
    LoadMetrics::Get().submit_to_done_ns->Record(obs::MonotonicNanos() -
                                                 s->submit_ack_ns);
  }
  s->outcome.ops_completed = s->op_index + 1;
  s->outcome.final_poll = snapshot;
  s->outcome.final_state = state;
  if (state == "done") {
    // The session's trace id on the daemon is whichever submit last set it
    // — for a clean session, ours.
    s->outcome.trace_echoed =
        s->op_trace_id != 0 &&
        snapshot.GetString("trace_id") ==
            trace::FormatTraceId(s->op_trace_id);
    AdvanceOp(s, now_ms);
  } else {
    // cancelled (ours) or failed: the plan ends here by construction.
    s->stage = SessionState::Stage::kDone;
  }
}

void LoadDriver::AdvanceOp(SessionState* s, uint64_t now_ms) {
  size_t next = s->op_index + 1;
  // Cancel entries are executed against the preceding submit, never as a
  // standalone op.
  while (next < s->plan->ops.size() &&
         s->plan->ops[next].kind == OpKind::kCancel)
    ++next;
  if (next >= s->plan->ops.size()) {
    s->stage = SessionState::Stage::kDone;
    return;
  }
  s->op_index = next;
  s->stage = SessionState::Stage::kIdle;
  s->due_ms = now_ms + static_cast<uint64_t>(s->plan->ops[next].delay_ms);
  s->cancel_at_ms = SessionState::kNoCancel;
  s->submit_ack_ns = 0;
  s->op_trace_id = 0;
}

void LoadDriver::OpenStalledStream(SessionState* s, ThreadConn* conn) {
  int port = options_.port();
  if (port <= 0) return;
  auto result = serve::ClientConnection::Connect(port, options_.io_timeout_ms);
  if (!result.ok()) return;
  serve::ClientConnection stream = std::move(result).value();
  serve::Request request;
  request.type = serve::RequestType::kStream;
  request.session = s->plan->name;
  if (!stream.SendLine(request.Serialize()).ok()) return;
  // Never read: the server's output backpressure has to absorb (or drop)
  // this connection without stalling anyone else.
  conn->stalled.push_back(std::move(stream));
  s->stalled_stream_opened = true;
  LoadMetrics::Get().stalled_streams->Add();
}

json::Value LoadReport::ToJson() const {
  json::Value out = json::Value::Object();
  out.Set("sessions", outcomes.size());
  out.Set("done", done);
  out.Set("cancelled", cancelled);
  out.Set("failed", failed);
  out.Set("unfinished", unfinished);
  out.Set("submits", static_cast<long long>(submits));
  out.Set("submit_attempts", static_cast<long long>(submit_attempts));
  out.Set("sheds", static_cast<long long>(sheds));
  out.Set("polls", static_cast<long long>(polls));
  out.Set("reconnects", static_cast<long long>(reconnects));
  out.Set("cancels_sent", static_cast<long long>(cancels_sent));
  out.Set("interrupted", static_cast<long long>(interrupted));
  out.Set("lost_after_ack", static_cast<long long>(lost_after_ack));
  out.Set("stalled_streams", static_cast<long long>(stalled_streams));
  out.Set("shed_rate", shed_rate());
  out.Set("wall_seconds", wall_seconds);
  out.Set("all_terminal", all_terminal);
  out.Set("restart_recovered", restart_recovered);
  out.Set("trace_ids_echoed", trace_ids_echoed);
  out.Set("trace_checked", trace_checked);
  return out;
}

}  // namespace load
}  // namespace slicetuner
