// Table 6: detailed comparison of Moderate against Uniform and Water
// filling under three settings per dataset:
//   (1) Basic            — equal initial slice sizes;
//   (2) Bad for Uniform  — most slices already large (low loss), so equal
//                          acquisition wastes budget on saturated slices;
//   (3) Bad for Water filling — a hard slice is large and an easy slice is
//                          small, so size-equalizing pours budget into the
//                          slice that needs it least.
// Expected shape: Moderate wins everywhere; Uniform is worst in (2),
// Water filling worst in (3).

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"

namespace slicetuner {
namespace {

struct Setting {
  std::string name;
  std::vector<size_t> sizes;
};

// Per-dataset hard/easy slice indices (by construction of the presets:
// largest/smallest sigma and label noise).
struct DatasetPlan {
  DatasetPreset preset;
  double budget;
  int hard_slice;
  int easy_slice;
};

std::vector<Setting> MakeSettings(const DatasetPlan& plan) {
  const int n = plan.preset.num_slices();
  std::vector<Setting> settings;
  settings.push_back({"Basic", EqualSizes(n, 300)});
  // Bad for Uniform: 80% of slices already have 3x the data.
  std::vector<size_t> bad_uniform(static_cast<size_t>(n), 600);
  for (int s = 0; s < std::max(1, n / 5); ++s) {
    bad_uniform[static_cast<size_t>((plan.hard_slice + s) % n)] = 120;
  }
  settings.push_back({"Bad for Uniform", bad_uniform});
  // Bad for Water filling: hard slice large, easy slice small.
  std::vector<size_t> bad_wf(static_cast<size_t>(n), 300);
  bad_wf[static_cast<size_t>(plan.hard_slice)] = 600;
  bad_wf[static_cast<size_t>(plan.easy_slice)] = 120;
  settings.push_back({"Bad for Water filling", bad_wf});
  return settings;
}

}  // namespace
}  // namespace slicetuner

int main() {
  using namespace slicetuner;
  std::printf(
      "=== Table 6: Moderate vs Uniform vs Water filling, 3 settings ===\n");

  std::vector<DatasetPlan> plans;
  plans.push_back({MakeFashionLike(), 3000.0, 6, 9});
  plans.push_back({MakeMixedLike(), 3000.0, 3, 11});
  plans.push_back({MakeFaceLike(), 1500.0, 7, 0});
  plans.push_back({MakeCensusLike(), 300.0, 3, 0});

  CsvWriter csv;
  ST_CHECK_OK(csv.Open(bench::ResultsDir() + "/table6_baselines.csv"));
  ST_CHECK_OK(csv.WriteRow({"dataset", "setting", "method", "loss",
                            "loss_se", "avg_eer", "avg_eer_se",
                            "iterations"}));

  const Method kMethods[] = {Method::kUniform, Method::kWaterFilling,
                             Method::kModerate};

  for (const DatasetPlan& plan : plans) {
    TablePrinter table({"Setting", "Method", "Loss", "Avg. EER", "# iters"});
    for (const Setting& setting : MakeSettings(plan)) {
      ExperimentConfig config;
      config.preset = plan.preset;
      config.initial_sizes = setting.sizes;
      config.budget = plan.budget;
      config.val_per_slice = 200;
      config.lambda = 0.1;  // Table 6 uses lambda = 0.1
      config.trials = 5;
      config.seed = 99;
      config.curve_options = bench::BenchCurveOptions(3);
      config.curve_options.num_points = 10;
      config.curve_options.num_curve_draws = 5;
      for (Method method : kMethods) {
        const auto outcome = RunMethod(config, method);
        ST_CHECK_OK(outcome.status());
        table.AddRow({setting.name, MethodName(method),
                      bench::LossCellWithSe(*outcome),
                      bench::AvgEerCellWithSe(*outcome),
                      method == Method::kModerate
                          ? FormatDouble(outcome->iterations_mean, 1)
                          : "1"});
        ST_CHECK_OK(csv.WriteRow(
            {plan.preset.name, setting.name, MethodName(method),
             FormatDouble(outcome->loss_mean, 4),
             FormatDouble(outcome->loss_se, 4),
             FormatDouble(outcome->avg_eer_mean, 4),
             FormatDouble(outcome->avg_eer_se, 4),
             FormatDouble(outcome->iterations_mean, 1)}));
      }
      table.AddSeparator();
    }
    std::printf("\n%s (B = %.0f, lambda = 0.1)\n", plan.preset.name.c_str(),
                plan.budget);
    table.Print(std::cout);
  }
  ST_CHECK_OK(csv.Close());
  std::printf("Series written to results/table6_baselines.csv\n");
  return 0;
}
