// Autonomous store maintenance: a cadence policy plus the background
// thread that drives DurableStore::CheckpointOnline while the daemon
// serves traffic. The serving layer notifies the manager on every finished
// job; the policy triggers a checkpoint after N finished jobs and/or once
// the un-snapshotted journal tail exceeds M bytes, whichever fires first.
// Each checkpoint collapses the sealed journal chain into a fresh
// snapshot, retires the covered generations, and trims superseded
// snapshots to a retention count — in bounded phases that never stop the
// world (writers only block for the O(1) generation rotate).
//
// Failure policy: a checkpoint that fails (disk full, injected EIO, fsync
// error) leaves the previous snapshot and the journal chain intact and
// serving unaffected; the failure is counted
// (store_maintenance_failures_total) and the thread simply retries on a
// later tick. docs/STATE.md ("Maintenance lifecycle") documents the
// crash-recovery invariant at every phase boundary;
// tests/store_maintenance_test.cc enforces them through the
// store::FaultInjector seam.

#ifndef SLICETUNER_STORE_MAINTENANCE_H_
#define SLICETUNER_STORE_MAINTENANCE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/json.h"
#include "common/result.h"
#include "store/store.h"

namespace slicetuner {
namespace store {

struct MaintenancePolicy {
  /// Checkpoint after this many finished jobs (0 = no job trigger).
  int snapshot_every_jobs = 0;
  /// Checkpoint once the un-snapshotted journal tail exceeds this many
  /// bytes (0 = no byte trigger).
  long long snapshot_every_bytes = 0;
  /// Maintenance thread wake cadence; triggers are also checked eagerly on
  /// every finished-job notification.
  int interval_ms = 250;
  /// Superseded checkpoints kept as snapshot-NNNNNN.st rollback artifacts.
  int retain_snapshots = 2;

  /// The policy is active when at least one trigger is configured.
  bool Enabled() const {
    return snapshot_every_jobs > 0 || snapshot_every_bytes > 0;
  }
};

struct MaintenanceStats {
  size_t checkpoints = 0;
  size_t failures = 0;
  size_t journals_retired = 0;
  size_t snapshots_retired = 0;
  size_t jobs_since_checkpoint = 0;
  /// Wall milliseconds of the most recent successful checkpoint.
  double last_checkpoint_ms = 0.0;
};

class MaintenanceManager {
 public:
  /// `provider` must return a snapshot document covering every record
  /// journaled so far (the serving layer passes
  /// SessionManager::DurableSnapshot). It is called from the maintenance
  /// thread with no store lock held, so it may take serving-layer locks.
  using SnapshotProvider = std::function<json::Value()>;

  MaintenanceManager(DurableStore* store, MaintenancePolicy policy,
                     SnapshotProvider provider);
  ~MaintenanceManager();

  MaintenanceManager(const MaintenanceManager&) = delete;
  MaintenanceManager& operator=(const MaintenanceManager&) = delete;

  /// Launches the maintenance thread. Idempotent.
  void Start();

  /// Stops and joins the thread (a checkpoint in flight completes first).
  /// Idempotent; the destructor calls it.
  void Stop();

  /// One finished job (the serving layer's cadence signal).
  void NotifyJobFinished();

  /// True when either trigger says a checkpoint is owed.
  bool CheckpointDue() const;

  /// Runs one checkpoint now, regardless of the triggers — the maintenance
  /// thread's body, also called directly by tests and benches.
  Status RunOnce();

  MaintenanceStats stats() const;
  json::Value StatsJson() const;

 private:
  void Loop();
  bool DueLocked() const;

  DurableStore* const store_;  // not owned
  const MaintenancePolicy policy_;
  const SnapshotProvider provider_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  size_t jobs_since_checkpoint_ = 0;
  MaintenanceStats stats_;
};

}  // namespace store
}  // namespace slicetuner

#endif  // SLICETUNER_STORE_MAINTENANCE_H_
