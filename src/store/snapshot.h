// Snapshot files: the checkpoint half of the durable-state store.
//
// A snapshot is one JSON document with an integrity header:
//
//   snapshot := header LF payload
//   header   := "SLICETUNER-SNAPSHOT" SP version SP crc8hex SP payload_bytes
//   version  := "v" major (readers reject any major they do not speak;
//               additive payload fields do not bump the major)
//   crc8hex  := CRC32 of the payload bytes (8 lowercase hex digits)
//   payload  := the JSON document, pretty-printed (human-inspectable state)
//
// Snapshots are always written through WriteFileAtomic (tmp + fsync +
// rename), so a crash at any instant leaves either the previous complete
// snapshot or the new complete snapshot — never a torn one. A header/CRC
// failure therefore means out-of-band corruption, and reads fail rather
// than guess (docs/STATE.md documents the recovery ladder).

#ifndef SLICETUNER_STORE_SNAPSHOT_H_
#define SLICETUNER_STORE_SNAPSHOT_H_

#include <string>

#include "common/json.h"
#include "common/result.h"

namespace slicetuner {
namespace store {

/// The snapshot format major this build writes and the only one it reads.
constexpr int kSnapshotVersion = 1;

/// Serializes `doc` with the integrity header. Exposed for tests.
std::string EncodeSnapshot(const json::Value& doc);

/// Atomically replaces `path` with a snapshot of `doc`. When
/// `bytes_written` is non-null it receives the encoded size (header +
/// payload) — the store_snapshot_bytes gauge in src/obs/.
Status WriteSnapshotFile(const std::string& path, const json::Value& doc,
                         size_t* bytes_written = nullptr);

/// Reads and verifies a snapshot. NotFound when the file does not exist;
/// Internal on a bad magic/version/CRC (corruption is never silently
/// tolerated — the journal may still allow recovery, see docs/STATE.md).
Result<json::Value> ReadSnapshotFile(const std::string& path);

}  // namespace store
}  // namespace slicetuner

#endif  // SLICETUNER_STORE_SNAPSHOT_H_
