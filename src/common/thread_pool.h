// Fixed-size thread pool used to parallelize independent model trainings
// during learning-curve estimation (Section 4.2 of the paper notes curves can
// be generated in parallel).

#ifndef SLICETUNER_COMMON_THREAD_POOL_H_
#define SLICETUNER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace slicetuner {

/// A minimal work-stealing-free thread pool. Submit() enqueues a task;
/// WaitIdle() blocks until all submitted tasks have completed. The pool is
/// neither copyable nor movable.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

  /// Tasks submitted but not yet picked up by a worker (the queue depth).
  /// A point-in-time snapshot: the real backlog signal admission control
  /// sheds load on (serve/admission.h).
  size_t PendingCount() const;

  /// Tasks currently executing on a worker.
  size_t InFlightCount() const;

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// fn must be safe to invoke concurrently for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  // Each queued task remembers when it was submitted so the worker can
  // attribute queue-wait time (pool_queue_wait_ns in src/obs/).
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueued_ns = 0;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Process-wide default pool (lazily created, never destroyed before exit).
ThreadPool& DefaultThreadPool();

}  // namespace slicetuner

#endif  // SLICETUNER_COMMON_THREAD_POOL_H_
