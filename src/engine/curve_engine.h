// CurveEstimationEngine: incremental, parallel learning-curve estimation.
//
// Learning-curve estimation dominates Slice Tuner's runtime: every call
// retrains the model on many (slice x trial x subset-size) grid cells. The
// engine attacks this on two axes:
//
//  1. Parallelism — the Monte-Carlo grid is fanned out through
//     engine::ParallelFor with per-cell RNG streams forked from the root
//     seed, so fitted parameters are bit-identical at any thread count.
//  2. Incrementality — in the spirit of incremental view maintenance, fitted
//     (b, a) parameters are cached per slice keyed by a content hash of the
//     slice's rows. After an acquisition round only the slices whose own
//     rows changed are treated as stale; in exhaustive mode only those
//     slices are re-trained (K trainings per stale slice instead of
//     K x |S|), and when nothing changed the whole result is served from
//     cache with zero trainings. In efficient (amortized) mode any stale
//     slice forces a full K-training re-run — those K models are trained on
//     joint subsets of all slices, so every slice's curve refreshes for
//     free.
//
//     The per-slice key is a deliberate approximation in exhaustive mode:
//     a slice's measured losses also depend on the *other* slices' rows
//     (they stay whole in its training subsets), so a cached curve reflects
//     the cross-slice context it was fitted under. This mirrors the paper's
//     own modeling assumption — One-shot treats slices as independent with
//     per-slice curves (Section 5.1) — and is the trade that makes
//     incremental maintenance possible at all. Set cache_curves = false on
//     SliceTuner (or enable_cache = false here) for the paper-faithful
//     full re-estimation every round.
//
// The cache is transparently invalidated when the estimation configuration
// (subset grid, model, trainer, validation data) changes. The RNG seed is
// deliberately *not* part of the cache key: reusing a curve fitted under an
// earlier seed for an unchanged slice is exactly the incremental-maintenance
// contract. For a fixed root seed and acquisition trajectory, results are
// still fully deterministic.

#ifndef SLICETUNER_ENGINE_CURVE_ENGINE_H_
#define SLICETUNER_ENGINE_CURVE_ENGINE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "core/learning_curve.h"

namespace slicetuner {
namespace engine {

/// Content hash of one slice's rows (features, labels) in `data`. Two
/// datasets agree on a slice's hash iff the slice holds the same rows in the
/// same order.
uint64_t HashSliceContent(const Dataset& data, int slice);

/// HashSliceContent for every slice in [0, num_slices) in a single pass
/// over the data.
std::vector<uint64_t> HashAllSliceContents(const Dataset& data,
                                           int num_slices);

/// Content hash of an entire dataset (rows, labels, slice ids).
uint64_t HashDatasetContent(const Dataset& data);

struct CurveEngineOptions {
  /// Overrides LearningCurveOptions::num_threads when non-zero.
  int num_threads = 0;
  /// Disable to force every Estimate() through a fresh full estimation.
  bool enable_cache = true;
};

struct CurveEngineStats {
  size_t estimate_calls = 0;
  size_t served_from_cache = 0;  // calls answered with zero trainings
  size_t full_runs = 0;          // complete re-estimations
  size_t partial_refits = 0;     // exhaustive-mode stale-slice-only runs
  size_t slices_refit = 0;       // slices re-estimated across all calls
  size_t slices_reused = 0;      // slices served from cache across all calls
  long long trainings_saved = 0;  // vs. uncached estimation of every call
};

class CurveEstimationEngine {
 public:
  explicit CurveEstimationEngine(CurveEngineOptions options = {});

  /// Drop-in replacement for EstimateLearningCurves with caching. Not
  /// reentrant: concurrent sessions should each own an engine (SliceTuner
  /// does); a shared engine serializes callers. A non-empty
  /// options.slices_to_estimate bypasses the cache entirely (a partial
  /// result must neither be served from nor written into it).
  Result<CurveEstimationResult> Estimate(const Dataset& train,
                                         const Dataset& validation,
                                         int num_slices,
                                         const ModelSpec& model_spec,
                                         const TrainerOptions& trainer,
                                         const LearningCurveOptions& options);

  /// Forces the slice (or everything) stale regardless of content hashes.
  void Invalidate(int slice);
  void InvalidateAll();

  /// Snapshot of the cache counters (copied under the engine lock: safe
  /// while another thread is inside Estimate()).
  CurveEngineStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Serializes the fitted-curve cache for a durable snapshot
  /// (docs/STATE.md): the config fingerprint plus every valid entry's
  /// content hash, curve parameters, measured points, and reliability flag.
  /// All doubles round-trip bit-exactly. Takes the engine lock, so it is
  /// safe (but may briefly block) while another thread estimates.
  json::Value SerializeState() const;

  /// Restores a SerializeState() document. Defensive by construction: only
  /// entries whose stored content hash equals `expected_hashes[slice]` —
  /// the hashes of the data the caller actually holds — are installed; any
  /// other slice stays cold and simply re-fits on the next Estimate.
  /// Returns the number of entries installed.
  Result<size_t> RestoreState(const json::Value& state,
                              const std::vector<uint64_t>& expected_hashes);

 private:
  struct Entry {
    bool valid = false;
    uint64_t content_hash = 0;
    SliceCurveEstimate estimate;
  };

  // Hash of everything (besides slice contents and the seed) that the fitted
  // curves depend on; a mismatch wipes the cache.
  uint64_t ConfigFingerprint(const Dataset& validation, int num_slices,
                             const ModelSpec& model_spec,
                             const TrainerOptions& trainer,
                             const LearningCurveOptions& options) const;

  CurveEngineOptions options_;
  std::vector<Entry> cache_;
  uint64_t fingerprint_ = 0;
  bool has_fingerprint_ = false;
  CurveEngineStats stats_;
  mutable std::mutex mu_;
};

}  // namespace engine
}  // namespace slicetuner

#endif  // SLICETUNER_ENGINE_CURVE_ENGINE_H_
