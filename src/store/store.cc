#include "store/store.h"

#include <algorithm>
#include <utility>

#include "common/fs_util.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "store/snapshot.h"

namespace slicetuner {
namespace store {

namespace {

constexpr const char kSnapshotName[] = "snapshot.st";

// Durability-path latencies and sizes (docs/OBSERVABILITY.md, "Store").
struct StoreMetrics {
  obs::Histogram* append_ns =
      obs::MetricsRegistry::Global().histogram("store_append_ns");
  obs::Histogram* fsync_ns =
      obs::MetricsRegistry::Global().histogram("store_fsync_ns");
  obs::Histogram* commit_records =
      obs::MetricsRegistry::Global().histogram("store_commit_records");
  obs::Counter* snapshots =
      obs::MetricsRegistry::Global().counter("store_snapshots_total");
  obs::Gauge* snapshot_bytes =
      obs::MetricsRegistry::Global().gauge("store_snapshot_bytes");
};

StoreMetrics& Metrics() {
  static StoreMetrics& metrics = *new StoreMetrics();
  return metrics;
}

std::string JournalPath(const std::string& dir, uint64_t generation) {
  return dir + "/" + StrFormat("journal-%06llu.wal",
                               static_cast<unsigned long long>(generation));
}

// journal-NNNNNN.wal -> NNNNNN; 0 when the name is not a journal file.
uint64_t GenerationOf(const std::string& name) {
  constexpr size_t kPrefixLen = 8;  // "journal-"
  constexpr size_t kDigits = 6;
  if (name.size() != kPrefixLen + kDigits + 4 ||
      name.rfind("journal-", 0) != 0 ||
      name.substr(kPrefixLen + kDigits) != ".wal") {
    return 0;
  }
  uint64_t gen = 0;
  for (size_t i = kPrefixLen; i < kPrefixLen + kDigits; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    gen = gen * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return gen;
}

Result<std::vector<uint64_t>> ListGenerations(const std::string& dir) {
  ST_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                      ListDirFiles(dir));
  std::vector<uint64_t> generations;
  for (const std::string& name : names) {
    const uint64_t gen = GenerationOf(name);
    if (gen > 0) generations.push_back(gen);
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

// Shared by ReadStateDir and DurableStore::Open so Open does not have to
// list the directory twice; `generations` receives the sorted chain.
Result<RecoveredState> ReadStateDirImpl(const std::string& dir,
                                        std::vector<uint64_t>* generations) {
  RecoveredState state;
  const Result<json::Value> snapshot =
      ReadSnapshotFile(dir + "/" + kSnapshotName);
  if (snapshot.ok()) {
    state.snapshot = *snapshot;
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }

  ST_ASSIGN_OR_RETURN(*generations, ListGenerations(dir));
  for (size_t i = 0; i < generations->size(); ++i) {
    const std::string path = JournalPath(dir, (*generations)[i]);
    ST_ASSIGN_OR_RETURN(JournalReadResult read, ReadJournal(path));
    if (read.tail_truncated && i + 1 < generations->size()) {
      // Only the newest generation can legitimately die mid-append: older
      // ones were rotated away after a clean Sync.
      return Status::Internal("journal " + path +
                              " has a torn tail but newer generations "
                              "follow; state directory is corrupted");
    }
    for (json::Value& record : read.records) {
      state.tail.push_back(std::move(record));
    }
    state.tail_truncated = read.tail_truncated;
    state.bytes_discarded += read.bytes_discarded;
  }
  return state;
}

}  // namespace

Result<RecoveredState> ReadStateDir(const std::string& dir) {
  std::vector<uint64_t> generations;
  return ReadStateDirImpl(dir, &generations);
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir) {
  ST_RETURN_NOT_OK(MkDirRecursive(dir));
  std::unique_ptr<DurableStore> store(new DurableStore());
  store->dir_ = dir;
  std::vector<uint64_t> generations;
  ST_ASSIGN_OR_RETURN(store->recovered_, ReadStateDirImpl(dir, &generations));
  store->generation_ = generations.empty() ? 1 : generations.back() + 1;
  ST_ASSIGN_OR_RETURN(store->writer_,
                      JournalWriter::Open(JournalPath(dir,
                                                      store->generation_)));
  store->stats_.journal_generation = store->generation_;
  return store;
}

DurableStore::~DurableStore() { (void)writer_.Close(); }

Status DurableStore::Append(const json::Value& record) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::ScopedTimer timer(Metrics().append_ns);
  ST_RETURN_NOT_OK(writer_.Append(record));
  ++stats_.records_appended;
  ++records_since_sync_;
  obs::Recorder::Global().RecordHere(
      obs::EventKind::kStoreAppend,
      static_cast<int64_t>(records_since_sync_));
  return Status::OK();
}

Status DurableStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  {
    obs::ScopedTimer timer(Metrics().fsync_ns);
    ST_RETURN_NOT_OK(writer_.Sync());
  }
  ++stats_.syncs;
  Metrics().commit_records->Record(records_since_sync_);
  obs::Recorder::Global().RecordHere(
      obs::EventKind::kStoreSync,
      static_cast<int64_t>(records_since_sync_));
  records_since_sync_ = 0;
  return Status::OK();
}

Status DurableStore::WriteSnapshot(const json::Value& doc) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  ST_RETURN_NOT_OK(WriteSnapshotFile(dir_ + "/" + kSnapshotName, doc,
                                     &bytes));
  ++stats_.snapshots_written;
  Metrics().snapshots->Add();
  Metrics().snapshot_bytes->Set(static_cast<double>(bytes));
  // Rotate: the replaced snapshot covers (at least) everything up to some
  // recent point; the retained generations bridge any gap.
  ST_RETURN_NOT_OK(writer_.Close());
  ++generation_;
  ST_ASSIGN_OR_RETURN(writer_, JournalWriter::Open(JournalPath(dir_,
                                                               generation_)));
  stats_.journal_generation = generation_;
  return Status::OK();
}

Status DurableStore::Compact(const json::Value& doc) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  ST_RETURN_NOT_OK(WriteSnapshotFile(dir_ + "/" + kSnapshotName, doc,
                                     &bytes));
  ++stats_.snapshots_written;
  Metrics().snapshots->Add();
  Metrics().snapshot_bytes->Set(static_cast<double>(bytes));
  ST_RETURN_NOT_OK(writer_.Close());
  // The new snapshot is durable; every retained generation is now redundant.
  ST_ASSIGN_OR_RETURN(const std::vector<uint64_t> generations,
                      ListGenerations(dir_));
  for (const uint64_t gen : generations) {
    ST_RETURN_NOT_OK(RemoveFile(JournalPath(dir_, gen)));
  }
  ++generation_;
  ST_ASSIGN_OR_RETURN(writer_, JournalWriter::Open(JournalPath(dir_,
                                                               generation_)));
  stats_.journal_generation = generation_;
  return Status::OK();
}

DurableStoreStats DurableStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

json::Value DurableStore::StatsJson() const {
  const DurableStoreStats s = stats();
  json::Value out = json::Value::Object();
  out.Set("dir", dir_);
  out.Set("records_appended", s.records_appended);
  out.Set("syncs", s.syncs);
  out.Set("snapshots_written", s.snapshots_written);
  out.Set("journal_generation", static_cast<long long>(s.journal_generation));
  out.Set("recovered_records", recovered_.tail.size());
  out.Set("recovered_snapshot", !recovered_.snapshot.is_null());
  out.Set("tail_truncated", recovered_.tail_truncated);
  return out;
}

}  // namespace store
}  // namespace slicetuner
