#include "serve/protocol.h"

#include <utility>

#include "common/string_util.h"

namespace slicetuner {
namespace serve {

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kSubmitJob:
      return "submit_job";
    case RequestType::kPoll:
      return "poll";
    case RequestType::kStream:
      return "stream";
    case RequestType::kCancel:
      return "cancel";
    case RequestType::kStats:
      return "stats";
    case RequestType::kMetrics:
      return "metrics";
    case RequestType::kTrace:
      return "trace";
    case RequestType::kSnapshot:
      return "snapshot";
    case RequestType::kRestore:
      return "restore";
    case RequestType::kShutdown:
      return "shutdown";
  }
  return "?";
}

Status JobSpec::Validate() const {
  if (session.empty()) {
    return Status::InvalidArgument("submit_job: session must not be empty");
  }
  if (num_slices < 0 || num_slices > kMaxNumSlices) {
    return Status::InvalidArgument(
        "submit_job: num_slices must lie in [1, 64] (or be omitted)");
  }
  if (rows_per_slice < 8 || rows_per_slice > 100000) {
    return Status::InvalidArgument(
        "submit_job: rows_per_slice must lie in [8, 100000]");
  }
  if (append_rows < 0 || append_rows > kMaxAppendRows) {
    return Status::InvalidArgument(
        "submit_job: append_rows must lie in [0, 1000000]");
  }
  // append_slice's upper bound depends on the resolved slice count (a
  // resumed session inherits it), so the range check happens at resolution
  // (SessionManager::Register / TuningSession::Resume).
  if (append_slice < 0) {
    return Status::OutOfRange("submit_job: append_slice must be >= 0");
  }
  // !(> 0) rather than (<= 0) so NaN is rejected too.
  if (!(budget > 0.0) || budget > kMaxBudget) {
    return Status::InvalidArgument("submit_job: budget must lie in (0, 1e7]");
  }
  if (rounds < 1 || rounds > 1000) {
    return Status::InvalidArgument(
        "submit_job: rounds must lie in [1, 1000]");
  }
  if (method != "moderate" && method != "uniform" &&
      method != "water_filling" && method != "proportional") {
    return Status::InvalidArgument(
        "submit_job: method must be moderate | uniform | water_filling | "
        "proportional, got '" +
        method + "'");
  }
  return Status::OK();
}

json::Value JobSpec::ToJson() const {
  json::Value out = json::Value::Object();
  out.Set("session", session);
  out.Set("num_slices", num_slices);
  out.Set("rows_per_slice", rows_per_slice);
  out.Set("append_rows", append_rows);
  out.Set("append_slice", append_slice);
  out.Set("budget", budget);
  out.Set("rounds", rounds);
  out.Set("method", method);
  out.Set("seed", static_cast<long long>(seed));
  return out;
}

Result<JobSpec> JobSpec::FromJson(const json::Value& value) {
  JobSpec spec;
  spec.session = value.GetString("session");
  spec.num_slices =
      static_cast<int>(value.GetInt("num_slices", spec.num_slices));
  spec.rows_per_slice = value.GetInt("rows_per_slice", spec.rows_per_slice);
  spec.append_rows = value.GetInt("append_rows", spec.append_rows);
  spec.append_slice =
      static_cast<int>(value.GetInt("append_slice", spec.append_slice));
  spec.budget = value.GetDouble("budget", spec.budget);
  spec.rounds = static_cast<int>(value.GetInt("rounds", spec.rounds));
  spec.method = value.GetString("method", spec.method);
  spec.seed = static_cast<uint64_t>(
      value.GetInt("seed", static_cast<long long>(spec.seed)));
  ST_RETURN_NOT_OK(spec.Validate());
  return spec;
}

json::Value Request::ToJson() const {
  json::Value out;
  if (type == RequestType::kSubmitJob) {
    out = job.ToJson();
  } else {
    out = json::Value::Object();
    if (!session.empty()) out.Set("session", session);
  }
  json::Value typed = json::Value::Object();
  typed.Set("type", RequestTypeName(type));
  for (const auto& member : out.members()) {
    typed.Set(member.first, member.second);
  }
  if (!trace_id.empty()) typed.Set("trace_id", trace_id);
  if (type == RequestType::kMetrics && !prefix.empty()) {
    typed.Set("prefix", prefix);
  }
  if (type == RequestType::kTrace && limit > 0) typed.Set("limit", limit);
  return typed;
}

std::string Request::Serialize() const { return ToJson().Dump(); }

Result<Request> Request::FromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const std::string type = value.GetString("type");
  Request request;
  request.trace_id = value.GetString("trace_id");
  if (type == "submit_job") {
    request.type = RequestType::kSubmitJob;
    ST_ASSIGN_OR_RETURN(request.job, JobSpec::FromJson(value));
    request.session = request.job.session;
    return request;
  }
  if (type == "poll" || type == "stream" || type == "cancel") {
    if (type == "poll") {
      request.type = RequestType::kPoll;
    } else if (type == "stream") {
      request.type = RequestType::kStream;
    } else {
      request.type = RequestType::kCancel;
    }
    request.session = value.GetString("session");
    if (request.session.empty()) {
      return Status::InvalidArgument("'" + type +
                                     "' requires a non-empty session");
    }
    return request;
  }
  if (type == "stats") {
    request.type = RequestType::kStats;
    return request;
  }
  if (type == "metrics") {
    request.type = RequestType::kMetrics;
    request.prefix = value.GetString("prefix");
    return request;
  }
  if (type == "trace") {
    request.type = RequestType::kTrace;
    request.session = value.GetString("session");
    request.limit = static_cast<int>(value.GetInt("limit", 0));
    if (request.limit < 0) {
      return Status::InvalidArgument("trace: limit must be >= 0");
    }
    return request;
  }
  if (type == "snapshot") {
    request.type = RequestType::kSnapshot;
    return request;
  }
  if (type == "restore") {
    request.type = RequestType::kRestore;
    return request;
  }
  if (type == "shutdown") {
    request.type = RequestType::kShutdown;
    return request;
  }
  return Status::InvalidArgument(
      type.empty() ? std::string("request is missing 'type'")
                   : "unknown request type '" + type + "'");
}

Result<Request> Request::Parse(const std::string& line) {
  ST_ASSIGN_OR_RETURN(const json::Value value, json::Value::Parse(line));
  return FromJson(value);
}

json::Value OkResponse() {
  json::Value out = json::Value::Object();
  out.Set("ok", true);
  return out;
}

json::Value ErrorResponse(const Status& status, int retry_after_ms) {
  json::Value out = json::Value::Object();
  out.Set("ok", false);
  out.Set("error", status.message());
  out.Set("code", StatusCodeToString(status.code()));
  if (retry_after_ms > 0) out.Set("retry_after_ms", retry_after_ms);
  return out;
}

bool IsOkResponse(const json::Value& response) {
  return response.GetBool("ok", false);
}

json::Value ProgressFrame(const std::string& session, size_t seq,
                          const json::Value& payload) {
  json::Value out = json::Value::Object();
  out.Set("frame", "progress");
  out.Set("session", session);
  out.Set("seq", seq);
  for (const auto& member : payload.members()) {
    out.Set(member.first, member.second);
  }
  return out;
}

json::Value DoneFrame(const std::string& session, const std::string& state,
                      const Status& status) {
  json::Value out = json::Value::Object();
  out.Set("frame", "done");
  out.Set("session", session);
  out.Set("state", state);
  if (!status.ok()) out.Set("error", status.ToString());
  return out;
}

}  // namespace serve
}  // namespace slicetuner
