// Blocking line-delimited JSON client for the tuning service. Shared by the
// slicetuner_client CLI, the serve throughput bench, and the in-process
// server tests so none of them hand-roll socket framing.

#ifndef SLICETUNER_SERVE_CLIENT_H_
#define SLICETUNER_SERVE_CLIENT_H_

#include <string>

#include "common/json.h"
#include "common/result.h"
#include "serve/protocol.h"

namespace slicetuner {
namespace serve {

class ClientConnection {
 public:
  ClientConnection() = default;
  ~ClientConnection();

  ClientConnection(ClientConnection&& other) noexcept;
  ClientConnection& operator=(ClientConnection&& other) noexcept;
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// Connects to 127.0.0.1:port.
  static Result<ClientConnection> Connect(int port, int timeout_ms = 5000);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one line (newline appended).
  Status SendLine(const std::string& line);

  /// Reads the next newline-terminated line (without the newline), waiting
  /// up to timeout_ms.
  Result<std::string> ReadLine(int timeout_ms = 10000);

  /// Sends `request` and reads exactly one response object.
  Result<json::Value> Call(const Request& request, int timeout_ms = 10000);

  /// Reads the next frame/response as JSON.
  Result<json::Value> ReadJson(int timeout_ms = 10000);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace serve
}  // namespace slicetuner

#endif  // SLICETUNER_SERVE_CLIENT_H_
