// Serve-layer metric handles (src/obs/), resolved once per process and
// shared by the server, admission controller, and session manager so the
// request path records through raw pointers. docs/OBSERVABILITY.md is the
// catalog; the stage histograms cover the request lifecycle
// accept -> parse -> admit -> dispatch -> run -> flush.

#ifndef SLICETUNER_SERVE_SERVE_METRICS_H_
#define SLICETUNER_SERVE_SERVE_METRICS_H_

#include "obs/metrics.h"

namespace slicetuner {
namespace serve {

struct ServeMetrics {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  // Request path.
  obs::Counter* requests = registry.counter("serve_requests_total");
  obs::Histogram* accept_ns =
      registry.histogram("serve_stage_ns", "stage", "accept");
  obs::Histogram* parse_ns =
      registry.histogram("serve_stage_ns", "stage", "parse");
  obs::Histogram* admit_ns =
      registry.histogram("serve_stage_ns", "stage", "admit");
  obs::Histogram* dispatch_ns =
      registry.histogram("serve_stage_ns", "stage", "dispatch");
  obs::Histogram* run_ns = registry.histogram("serve_stage_ns", "stage",
                                              "run");
  obs::Histogram* flush_ns =
      registry.histogram("serve_stage_ns", "stage", "flush");

  // Event loop / transport. Per-worker variants of the hot counters are
  // registered by each worker at startup as `serve_worker_*{worker="N"}`.
  obs::Counter* accepts = registry.counter("serve_accepts_total");
  obs::Counter* conns_rejected =
      registry.counter("serve_connections_rejected_total");
  obs::Counter* eintr_retries = registry.counter("serve_eintr_retries_total");
  obs::Counter* poll_errors = registry.counter("serve_poll_errors_total");
  obs::Counter* stream_pauses = registry.counter("serve_stream_pauses_total");
  obs::Counter* output_overflow =
      registry.counter("serve_output_overflow_dropped_total");

  // Admission.
  obs::Counter* admitted = registry.counter("serve_admitted_total");
  obs::Counter* shed_queue_full =
      registry.counter("serve_shed_queue_full_total");
  obs::Counter* shed_backlog = registry.counter("serve_shed_backlog_total");
  obs::Counter* retry_after_sent =
      registry.counter("serve_retry_after_sent_total");
  obs::Counter* shed_restoring =
      registry.counter("serve_shed_restoring_total");
  obs::Counter* cancels_resolved =
      registry.counter("serve_cancels_resolved_total");
  obs::Gauge* queue_depth = registry.gauge("serve_queue_depth");
  obs::Histogram* batch_size = registry.histogram("serve_batch_size");

  // Sessions / jobs.
  obs::Gauge* sessions = registry.gauge("serve_sessions");
  obs::Gauge* connections = registry.gauge("serve_connections");
  obs::Counter* jobs_done = registry.counter("serve_jobs_done_total");
  obs::Counter* jobs_cancelled =
      registry.counter("serve_jobs_cancelled_total");
  obs::Counter* jobs_failed = registry.counter("serve_jobs_failed_total");
  obs::Histogram* queue_wait_ns = registry.histogram("serve_queue_wait_ns");
  obs::Histogram* submit_to_done_ns =
      registry.histogram("serve_submit_to_done_ns");

  // Per-round span stages inside a running job.
  obs::Histogram* round_estimate_ns =
      registry.histogram("serve_round_stage_ns", "stage", "estimate");
  obs::Histogram* round_plan_ns =
      registry.histogram("serve_round_stage_ns", "stage", "plan");
  obs::Histogram* round_acquire_ns =
      registry.histogram("serve_round_stage_ns", "stage", "acquire");

  // Startup recovery.
  obs::Gauge* replay_ms = registry.gauge("store_replay_ms");

  static ServeMetrics& Get() {
    static ServeMetrics& metrics = *new ServeMetrics();
    return metrics;
  }
};

}  // namespace serve
}  // namespace slicetuner

#endif  // SLICETUNER_SERVE_SERVE_METRICS_H_
