// Compatibility shim: the deterministic parallel-for moved down to
// common/parallel_for.h so the tensor kernels (a layer *below* the engine)
// can thread over the same shared pool. Engine code keeps addressing it as
// engine::ParallelFor; new code should include common/parallel_for.h.

#ifndef SLICETUNER_ENGINE_PARALLEL_FOR_H_
#define SLICETUNER_ENGINE_PARALLEL_FOR_H_

#include "common/parallel_for.h"

namespace slicetuner {
namespace engine {

using slicetuner::EffectiveThreads;
using slicetuner::ParallelFor;
using slicetuner::ParallelForDepth;
using slicetuner::ParallelForSeeded;
using slicetuner::ParallelOptions;

}  // namespace engine
}  // namespace slicetuner

#endif  // SLICETUNER_ENGINE_PARALLEL_FOR_H_
