// Tests for the common JSON layer: scalar lexers, writer/parser round trips
// (including a seeded fuzz-style property test over nested documents with
// escapes), pretty-printing, and strict rejection of malformed input.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/random.h"

namespace slicetuner {
namespace json {
namespace {

TEST(JsonScalarTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), 9223372036854775807LL);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());  // overflow
}

TEST(JsonScalarTest, ParseUint64) {
  EXPECT_EQ(*ParseUint64("18446744073709551615"), ~uint64_t{0});
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());
}

TEST(JsonScalarTest, ParseFloat64) {
  EXPECT_DOUBLE_EQ(*ParseFloat64("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(*ParseFloat64("-1e-3"), -1e-3);
  EXPECT_FALSE(ParseFloat64("1.2.3").ok());
  EXPECT_FALSE(ParseFloat64("").ok());
}

TEST(JsonScalarTest, FormatFloat64RoundTripsExactly) {
  const std::vector<double> values = {0.0,   -0.0,   1.0,
                                      0.1,   1e300,  1e-300,
                                      3.14159265358979, 0.30000000000000004};
  for (const double v : values) {
    EXPECT_EQ(*ParseFloat64(FormatFloat64(v)), v) << FormatFloat64(v);
  }
}

TEST(JsonValueTest, ScalarRoundTrips) {
  for (const char* text :
       {"null", "true", "false", "0", "-7", "123456789", "0.5", "-1.25",
        "\"\"", "\"hello\"", "\"line\\nbreak\"", "\"quote\\\"inside\""}) {
    const Result<Value> parsed = Value::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    EXPECT_EQ(parsed->Dump(), text);
  }
}

TEST(JsonValueTest, IntAndDoubleStayDistinct) {
  const Result<Value> as_int = Value::Parse("5");
  const Result<Value> as_double = Value::Parse("5.0");
  ASSERT_TRUE(as_int.ok());
  ASSERT_TRUE(as_double.ok());
  EXPECT_TRUE(as_int->is_int());
  EXPECT_FALSE(as_double->is_int());
  EXPECT_TRUE(as_double->is_number());
  EXPECT_FALSE(*as_int == *as_double);
  // A whole-valued double keeps a decimal point so it reparses as a double.
  EXPECT_EQ(as_double->Dump(), "5.0");
}

TEST(JsonValueTest, HugeIntegerFallsBackToDouble) {
  const Result<Value> parsed = Value::Parse("123456789012345678901234567890");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->is_int());
  EXPECT_TRUE(parsed->is_number());
}

TEST(JsonValueTest, IntValueSaturatesOutOfRangeDoubles) {
  // Wire input can carry any double; the cast must saturate, not overflow
  // (static_cast of an out-of-range double is UB).
  EXPECT_EQ(Value(1e300).int_value(), 9223372036854775807LL);
  EXPECT_EQ(Value(-1e300).int_value(), -9223372036854775807LL - 1);
  EXPECT_EQ(Value(2.5).int_value(), 2);
  const Result<Value> huge =
      Value::Parse("{\"rows\":1e300,\"neg\":-1e300}");
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge->GetInt("rows"), 9223372036854775807LL);
  EXPECT_EQ(huge->GetInt("neg"), -9223372036854775807LL - 1);
}

TEST(JsonValueTest, ObjectKeepsInsertionOrderAndOverwrites) {
  Value object = Value::Object();
  object.Set("z", 1);
  object.Set("a", 2);
  object.Set("z", 3);
  EXPECT_EQ(object.Dump(), "{\"z\":3,\"a\":2}");
  EXPECT_EQ(object.GetInt("z"), 3);
  EXPECT_EQ(object.Find("missing"), nullptr);
}

TEST(JsonValueTest, EscapeHandling) {
  const std::string text = "tab\there \"quoted\" back\\slash\nnewline";
  Value value(text);
  const Result<Value> reparsed = Value::Parse(value.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->string_value(), text);
}

TEST(JsonValueTest, UnicodeEscapes) {
  const Result<Value> bmp = Value::Parse("\"\\u00e9\\u20ac\"");
  ASSERT_TRUE(bmp.ok());
  EXPECT_EQ(bmp->string_value(), "\xc3\xa9\xe2\x82\xac");  // e-acute, euro
  const Result<Value> astral = Value::Parse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(astral.ok());
  EXPECT_EQ(astral->string_value(), "\xf0\x9f\x98\x80");  // U+1F600
  EXPECT_FALSE(Value::Parse("\"\\ud83d\"").ok());  // unpaired surrogate
  EXPECT_FALSE(Value::Parse("\"\\ude00\"").ok());  // lone low surrogate
}

TEST(JsonValueTest, RejectsMalformedInput) {
  for (const char* text :
       {"", "{", "}", "[1,", "{\"a\":}", "{\"a\" 1}", "{a:1}", "01x",
        "\"unterminated", "truex", "[1 2]", "{\"a\":1}extra", "nul",
        "1.2.3", "- 1", "\"bad\\escape\"", "[1,]2",
        // RFC 8259 forbids leading zeros.
        "007", "-00.5", "01", "[0123]"}) {
    EXPECT_FALSE(Value::Parse(text).ok()) << text;
  }
  // ...but a lone zero integer part stays valid in every position.
  for (const char* text : {"0", "-0", "0.5", "-0.5", "0e3"}) {
    EXPECT_TRUE(Value::Parse(text).ok()) << text;
  }
}

TEST(JsonValueTest, DepthLimitStopsHostileNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Value::Parse(deep).ok());
}

TEST(JsonValueTest, PrettyPrintMatchesBenchLayout) {
  Value summary = Value::Object();
  summary.Set("bench", "demo");
  summary.Set("speedup", 2.5);
  summary.Set("ok", true);
  Value sizes = Value::Array();
  sizes.Append(1);
  sizes.Append(2);
  summary.Set("sizes", sizes);
  EXPECT_EQ(summary.Dump(2),
            "{\n"
            "  \"bench\": \"demo\",\n"
            "  \"speedup\": 2.5,\n"
            "  \"ok\": true,\n"
            "  \"sizes\": [1, 2]\n"
            "}");
  // Pretty output parses back to the same document.
  const Result<Value> reparsed = Value::Parse(summary.Dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*reparsed == summary);
}

// ---------------------------------------------------------------------------
// Property test: parse(serialize(x)) == x over random nested documents.
// ---------------------------------------------------------------------------

std::string RandomString(Rng* rng) {
  static const char kAlphabet[] =
      "ab\"\\/\b\f\n\r\txyz {}[]:,0e";
  const size_t len = static_cast<size_t>(rng->UniformInt(uint64_t{12}));
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    const size_t pick = static_cast<size_t>(
        rng->UniformInt(uint64_t{sizeof(kAlphabet)}));  // incl. one past end
    if (pick >= sizeof(kAlphabet) - 1) {
      out += "\xc3\xa9";  // a multi-byte UTF-8 character (e-acute)
    } else {
      out += kAlphabet[pick];
    }
  }
  // Occasionally prepend a raw control character (must be \u-escaped).
  if (rng->Bernoulli(0.2)) out.insert(out.begin(), '\x01');
  return out;
}

Value RandomValue(Rng* rng, int depth) {
  const uint64_t kind =
      rng->UniformInt(depth >= 4 ? uint64_t{5} : uint64_t{7});
  switch (kind) {
    case 0:
      return Value();
    case 1:
      return Value(rng->Bernoulli(0.5));
    case 2:
      return Value(static_cast<long long>(
          rng->UniformInt(int64_t{-1000000}, int64_t{1000000})));
    case 3: {
      // Mix of tame and extreme magnitudes.
      const double mantissa = rng->Uniform(-2.0, 2.0);
      const int exponent =
          static_cast<int>(rng->UniformInt(int64_t{-30}, int64_t{30}));
      return Value(mantissa * std::pow(10.0, exponent));
    }
    case 4:
      return Value(RandomString(rng));
    case 5: {
      Value array = Value::Array();
      const uint64_t n = rng->UniformInt(uint64_t{4});
      for (uint64_t i = 0; i < n; ++i) {
        array.Append(RandomValue(rng, depth + 1));
      }
      return array;
    }
    default: {
      Value object = Value::Object();
      const uint64_t n = rng->UniformInt(uint64_t{4});
      for (uint64_t i = 0; i < n; ++i) {
        object.Set(RandomString(rng) + std::to_string(i),
                   RandomValue(rng, depth + 1));
      }
      return object;
    }
  }
}

TEST(JsonPropertyTest, ParseSerializeRoundTripsRandomDocuments) {
  Rng rng(20260727);
  for (int trial = 0; trial < 500; ++trial) {
    const Value value = RandomValue(&rng, 0);
    for (const int indent : {0, 2}) {
      const std::string dumped = value.Dump(indent);
      const Result<Value> reparsed = Value::Parse(dumped);
      ASSERT_TRUE(reparsed.ok())
          << "trial " << trial << ": " << reparsed.status() << "\n"
          << dumped;
      ASSERT_TRUE(*reparsed == value)
          << "trial " << trial << " diverged:\n"
          << dumped << "\nvs\n"
          << reparsed->Dump(indent);
      // Serialization is a fixed point: dump(parse(dump(x))) == dump(x).
      EXPECT_EQ(reparsed->Dump(indent), dumped);
    }
  }
}

}  // namespace
}  // namespace json
}  // namespace slicetuner
