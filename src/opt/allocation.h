// The selective data acquisition convex program (Section 5.1):
//
//   min_d  sum_i b_i (s_i + d_i)^(-a_i)
//        + lambda * sum_i max(0, b_i (s_i + d_i)^(-a_i) / A - 1)
//   s.t.   sum_i C(s_i) d_i = B,  d_i >= 0
//
// where A is the average loss over slices for the current data (a constant
// during one solve). Solved by projected gradient descent with exact
// projection onto the budget simplex; the lambda = 0 case is cross-checked
// by the closed-form KKT solver in water_filling.h.

#ifndef SLICETUNER_OPT_ALLOCATION_H_
#define SLICETUNER_OPT_ALLOCATION_H_

#include <vector>

#include "common/result.h"
#include "curvefit/power_law.h"

namespace slicetuner {

/// Which unfairness penalty the objective uses. Definition 1 of the paper
/// averages |loss_i - A|; it also notes the max-variation, which penalizes
/// only the worst slice. Both are convex.
enum class PenaltyKind {
  kAverage,  // lambda * sum_i max(0, L_i/A - 1)   (the paper's default)
  kMax,      // lambda * max_i max(0, L_i/A - 1)   (worst-case fairness)
};

/// Problem statement for one solve.
struct AllocationProblem {
  std::vector<PowerLawCurve> curves;  // learning curve of each slice
  std::vector<double> sizes;          // current slice sizes |s_i|
  std::vector<double> costs;          // per-example cost C(s_i) > 0
  double budget = 0.0;                // B
  double lambda = 1.0;                // loss/fairness balance
  PenaltyKind penalty = PenaltyKind::kAverage;
};

struct AllocationOptions {
  int max_iterations = 2000;
  double tolerance = 1e-9;  // stop when the objective improvement is tiny
};

struct AllocationResult {
  std::vector<double> examples;  // continuous d_i >= 0, costs.d = B
  double objective = 0.0;
  int iterations = 0;
};

/// Value of the objective at `d`.
double AllocationObjective(const AllocationProblem& problem,
                           const std::vector<double>& d);

/// Solves the program. Errors on inconsistent sizes, non-positive costs, or
/// a negative budget. budget == 0 returns all-zero.
Result<AllocationResult> SolveAllocation(
    const AllocationProblem& problem,
    const AllocationOptions& options = AllocationOptions());

/// Rounds a continuous allocation to integers whose spend does not exceed
/// the budget, assigning leftover budget greedily by marginal loss
/// reduction per unit cost.
std::vector<long long> RoundAllocation(const AllocationProblem& problem,
                                       const std::vector<double>& examples);

}  // namespace slicetuner

#endif  // SLICETUNER_OPT_ALLOCATION_H_
