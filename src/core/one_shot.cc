#include "core/one_shot.h"

#include "opt/allocation.h"

namespace slicetuner {

Result<OneShotPlan> PlanOneShotWithCurves(
    const std::vector<SliceCurveEstimate>& curves,
    const std::vector<size_t>& sizes, const std::vector<double>& costs,
    double budget, double lambda) {
  AllocationProblem problem;
  problem.curves.reserve(curves.size());
  for (const SliceCurveEstimate& c : curves) problem.curves.push_back(c.curve);
  problem.sizes.assign(sizes.begin(), sizes.end());
  problem.costs = costs;
  problem.budget = budget;
  problem.lambda = lambda;

  ST_ASSIGN_OR_RETURN(AllocationResult solution, SolveAllocation(problem));

  OneShotPlan plan;
  plan.curves = curves;
  plan.examples = RoundAllocation(problem, solution.examples);
  plan.objective = solution.objective;
  return plan;
}

Result<OneShotPlan> PlanOneShot(const Dataset& train,
                                const Dataset& validation, int num_slices,
                                const ModelSpec& model_spec,
                                const TrainerOptions& trainer,
                                const std::vector<double>& costs,
                                double budget,
                                const OneShotOptions& options) {
  ST_ASSIGN_OR_RETURN(
      CurveEstimationResult estimation,
      EstimateLearningCurves(train, validation, num_slices, model_spec,
                             trainer, options.curve_options));
  const std::vector<size_t> sizes = train.SliceSizes(num_slices);
  ST_ASSIGN_OR_RETURN(OneShotPlan plan,
                      PlanOneShotWithCurves(estimation.slices, sizes, costs,
                                            budget, options.lambda));
  plan.model_trainings = estimation.model_trainings;
  return plan;
}

}  // namespace slicetuner
