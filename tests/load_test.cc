// Unit + in-process end-to-end coverage of the load harness (src/load/):
// workload compilation determinism and traffic-shape properties, the
// driver's full replay loop against an in-process TuningServer, and the
// oracle's bit-identity check (including its ability to catch a tampered
// result).

#include <gtest/gtest.h>

#include <set>

#include "load/driver.h"
#include "load/oracle.h"
#include "load/workload.h"
#include "serve/server.h"

namespace slicetuner {
namespace load {
namespace {

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.sessions = 24;
  spec.arrival = ArrivalProcess::kPoisson;
  spec.arrival_rate_per_sec = 400.0;
  spec.budget_cap = 24.0;
  spec.max_rounds = 1;
  spec.append_fraction = 0.3;
  spec.max_appends = 1;
  spec.cancel_fraction = 0.0;
  spec.moderate_fraction = 0.0;
  spec.stalled_readers = 1;
  spec.seed = 7;
  return spec;
}

TEST(WorkloadTest, CompileIsDeterministic) {
  const WorkloadSpec spec = SmallSpec();
  auto a = CompileWorkload(spec);
  auto b = CompileWorkload(spec);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToJson().Dump(), b->ToJson().Dump());

  WorkloadSpec other = spec;
  other.seed = 8;
  auto c = CompileWorkload(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->ToJson().Dump(), c->ToJson().Dump());
}

TEST(WorkloadTest, ArrivalsAreSortedAndProcessesDiffer) {
  WorkloadSpec spec = SmallSpec();
  auto poisson = CompileWorkload(spec);
  ASSERT_TRUE(poisson.ok());
  int prev = -1;
  std::set<int> distinct;
  for (const auto& s : poisson->sessions) {
    EXPECT_GE(s.arrival_ms, prev);
    prev = s.arrival_ms;
    distinct.insert(s.arrival_ms);
  }
  // Poisson arrivals spread out; bursts collapse onto few instants.
  EXPECT_GT(distinct.size(), 4u);

  spec.arrival = ArrivalProcess::kBursty;
  spec.burst_size = 8;
  spec.burst_every_ms = 100;
  auto bursty = CompileWorkload(spec);
  ASSERT_TRUE(bursty.ok());
  std::set<int> burst_instants;
  for (const auto& s : bursty->sessions) burst_instants.insert(s.arrival_ms);
  EXPECT_EQ(burst_instants.size(), 3u);  // 24 sessions / burst of 8
}

TEST(WorkloadTest, MixKnobsShapeTheOps) {
  WorkloadSpec spec = SmallSpec();
  spec.sessions = 40;
  spec.append_fraction = 0.5;
  spec.cancel_fraction = 0.2;
  spec.moderate_fraction = 0.25;
  auto workload = CompileWorkload(spec);
  ASSERT_TRUE(workload.ok());

  int cancels = 0, appends = 0, moderate = 0;
  for (const auto& s : workload->sessions) {
    ASSERT_FALSE(s.ops.empty());
    EXPECT_EQ(s.ops[0].kind, OpKind::kSubmit);
    EXPECT_GT(s.ops[0].job.num_slices, 0);
    EXPECT_LE(s.ops[0].job.budget, spec.budget_cap);
    if (s.ops[0].job.method == "moderate") ++moderate;
    bool cancelled = false;
    for (const auto& op : s.ops) {
      if (op.kind == OpKind::kCancel) {
        ++cancels;
        cancelled = true;
      }
      if (op.kind == OpKind::kAppend) {
        ++appends;
        // Appends ride the resumed session: never restate slice count,
        // and never follow a cancel.
        EXPECT_EQ(op.job.num_slices, 0);
        EXPECT_GT(op.job.append_rows, 0);
        EXPECT_FALSE(cancelled);
      }
    }
  }
  EXPECT_EQ(moderate, 10);  // exact slot walk: 0.25 * 40
  EXPECT_GT(cancels, 0);
  EXPECT_GT(appends, 0);
}

TEST(WorkloadTest, RejectsUnknownScenarioAndBadSpec) {
  WorkloadSpec spec = SmallSpec();
  spec.scenarios = {"no-such-scenario"};
  EXPECT_FALSE(CompileWorkload(spec).ok());

  WorkloadSpec bad = SmallSpec();
  bad.append_fraction = 1.5;
  EXPECT_FALSE(CompileWorkload(bad).ok());
}

// Full in-process replay: driver against a real TuningServer on an
// ephemeral port, then the oracle over the clean survivors.
TEST(LoadDriverTest, ReplaysWorkloadAndMatchesOracle) {
  auto workload = CompileWorkload(SmallSpec());
  ASSERT_TRUE(workload.ok());

  serve::ServerOptions options;
  options.admission.max_queue_depth = 64;
  serve::TuningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  DriverOptions driver_options;
  driver_options.port = [&server] { return server.port(); };
  driver_options.threads = 3;
  driver_options.poll_interval_ms = 5;
  driver_options.run_deadline_ms = 120000;
  LoadDriver driver(*workload, driver_options);
  auto report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_TRUE(report->all_terminal);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->lost_after_ack, 0u);
  EXPECT_EQ(report->done, workload->sessions.size());
  EXPECT_GE(report->submits, workload->sessions.size());
  EXPECT_EQ(report->stalled_streams, 1u);

  const OracleReport oracle = VerifyAgainstOracle(*workload, *report);
  EXPECT_GT(oracle.checked, 0u);
  EXPECT_EQ(oracle.mismatched, 0u)
      << (oracle.mismatches.empty() ? "" : oracle.mismatches[0]);

  server.RequestShutdown();
  server.Wait();
}

TEST(LoadDriverTest, CancelsTaintSessionsOutOfTheOracleSet) {
  WorkloadSpec spec = SmallSpec();
  spec.sessions = 12;
  spec.cancel_fraction = 1.0;
  spec.append_fraction = 0.0;
  auto workload = CompileWorkload(spec);
  ASSERT_TRUE(workload.ok());

  serve::TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  DriverOptions driver_options;
  driver_options.port = [&server] { return server.port(); };
  driver_options.threads = 2;
  driver_options.poll_interval_ms = 5;
  driver_options.run_deadline_ms = 120000;
  LoadDriver driver(*workload, driver_options);
  auto report = driver.Run();
  ASSERT_TRUE(report.ok());

  EXPECT_TRUE(report->all_terminal);
  EXPECT_EQ(report->lost_after_ack, 0u);
  EXPECT_GT(report->cancels_sent, 0u);
  size_t tainted = 0;
  for (const auto& outcome : report->outcomes) {
    // A cancel either landed (cancelled, tainted) or lost the race to the
    // terminal transition (done, and only tainted if the cancel was sent)
    // — both are terminal, neither is a failure.
    EXPECT_TRUE(outcome.final_state == "cancelled" ||
                outcome.final_state == "done")
        << outcome.final_state;
    if (outcome.final_state == "cancelled")
      EXPECT_TRUE(outcome.tainted) << outcome.name;
    if (outcome.tainted) ++tainted;
  }
  EXPECT_GT(tainted, 0u);
  // Tainted sessions are excluded; any clean race-losers must still match.
  const OracleReport oracle = VerifyAgainstOracle(*workload, *report);
  EXPECT_EQ(oracle.checked + oracle.skipped, workload->sessions.size());
  EXPECT_EQ(oracle.skipped, tainted);
  EXPECT_EQ(oracle.mismatched, 0u)
      << (oracle.mismatches.empty() ? "" : oracle.mismatches[0]);

  server.RequestShutdown();
  server.Wait();
}

TEST(OracleTest, CatchesATamperedResult) {
  WorkloadSpec spec = SmallSpec();
  spec.sessions = 2;
  spec.append_fraction = 0.0;
  spec.stalled_readers = 0;
  // Baseline methods never fit curves; moderate sessions always do, and the
  // tamper below needs a curves block to corrupt.
  spec.moderate_fraction = 1.0;
  auto workload = CompileWorkload(spec);
  ASSERT_TRUE(workload.ok());

  serve::TuningServer server;
  ASSERT_TRUE(server.Start().ok());
  DriverOptions driver_options;
  driver_options.port = [&server] { return server.port(); };
  driver_options.threads = 1;
  driver_options.poll_interval_ms = 5;
  driver_options.run_deadline_ms = 120000;
  LoadDriver driver(*workload, driver_options);
  auto report = driver.Run();
  ASSERT_TRUE(report.ok());
  server.RequestShutdown();
  server.Wait();
  ASSERT_TRUE(report->all_terminal);

  // Sanity: untampered, it matches.
  EXPECT_EQ(VerifyAgainstOracle(*workload, *report).mismatched, 0u);

  // Corrupt one closing coefficient by one ulp-ish nudge: the exact-equality
  // oracle must notice.
  LoadReport tampered = *report;
  json::Value* poll = &tampered.outcomes[0].final_poll;
  const json::Value* curves = poll->Find("curves");
  ASSERT_NE(curves, nullptr)
      << "state=" << tampered.outcomes[0].final_state
      << " poll=" << poll->Dump();
  json::Value new_curves = *curves;
  json::Value b = *new_curves.Find("b");
  ASSERT_GT(b.size(), 0u);
  json::Value nudged = json::Value::Array();
  nudged.Append(b.at(0).number_value() + 1e-12);
  for (size_t i = 1; i < b.size(); ++i) nudged.Append(b.at(i));
  new_curves.Set("b", std::move(nudged));
  poll->Set("curves", std::move(new_curves));

  const OracleReport oracle = VerifyAgainstOracle(*workload, tampered);
  EXPECT_EQ(oracle.mismatched, 1u);
  ASSERT_FALSE(oracle.mismatches.empty());
  EXPECT_NE(oracle.mismatches[0].find("curves.b[0]"), std::string::npos)
      << oracle.mismatches[0];
}

}  // namespace
}  // namespace load
}  // namespace slicetuner
