// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each bench prints a human-readable table mirroring the
// paper and writes a CSV next to it under results/.

#ifndef SLICETUNER_BENCH_BENCH_UTIL_H_
#define SLICETUNER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "common/string_util.h"
#include "core/experiment.h"

namespace slicetuner {
namespace bench {

/// mkdir -p: creates `path` and any missing parents. Returns an error when a
/// component cannot be created or exists as a non-directory.
inline Status MkDirRecursive(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (!prefix.empty() && prefix != ".") {
      struct ::stat st;
      if (::stat(prefix.c_str(), &st) == 0) {
        if (!S_ISDIR(st.st_mode)) {
          return Status::AlreadyExists("MkDirRecursive: not a directory: " +
                                       prefix);
        }
      } else if (::mkdir(prefix.c_str(), 0755) != 0) {
        return Status::Internal("MkDirRecursive: cannot create " + prefix);
      }
    }
    if (i < path.size()) prefix.push_back('/');
  }
  return Status::OK();
}

/// Output directory for bench CSV/JSON series, created on demand
/// (overridable via SLICETUNER_RESULTS_DIR). A directory that cannot be
/// created aborts the bench: CI must never "pass" a run that silently wrote
/// nothing.
inline std::string ResultsDir() {
  const char* env = std::getenv("SLICETUNER_RESULTS_DIR");
  const std::string dir = (env != nullptr && env[0] != '\0') ? env : "results";
  ST_CHECK_OK(MkDirRecursive(dir));
  return dir;
}

/// "0.302" / "0.134 / 0.319" cells used across the method tables.
inline std::string LossCell(const MethodOutcome& o) {
  return FormatDouble(o.loss_mean, 3);
}

inline std::string LossCellWithSe(const MethodOutcome& o) {
  return FormatDouble(o.loss_mean, 3) + " +- " + FormatDouble(o.loss_se, 3);
}

inline std::string EerCell(const MethodOutcome& o) {
  return FormatDouble(o.avg_eer_mean, 3) + " / " +
         FormatDouble(o.max_eer_mean, 3);
}

inline std::string AvgEerCellWithSe(const MethodOutcome& o) {
  return FormatDouble(o.avg_eer_mean, 3) + " +- " +
         FormatDouble(o.avg_eer_se, 3);
}

/// Shared learning-curve estimation settings for the benches: K = 8 subset
/// points, 3 averaged draws (the paper uses K = 10 and 5 draws; we scale
/// down proportionally with our smaller data sizes).
inline LearningCurveOptions BenchCurveOptions(uint64_t seed) {
  LearningCurveOptions o;
  o.num_points = 8;
  o.num_curve_draws = 3;
  o.seed = seed;
  return o;
}

/// The methods of Tables 2/10 in paper order.
inline std::vector<Method> SliceTunerMethods() {
  return {Method::kOriginal, Method::kOneShot, Method::kAggressive,
          Method::kModerate, Method::kConservative};
}

/// Parses an integer `--<flag>=N` argument (e.g. "--threads=").
inline int ParseIntFlag(int argc, char** argv, const char* prefix,
                        int default_value) {
  const size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) {
      return std::atoi(argv[i] + len);
    }
  }
  return default_value;
}

/// Parses `--threads=N` from the command line: the engine lane count the
/// bench opts into (1 = serial, 0 = every core; see engine/parallel_for.h).
/// Results are identical at any setting — only wall time changes.
inline int ParseThreadsFlag(int argc, char** argv, int default_threads = 0) {
  return ParseIntFlag(argc, argv, "--threads=", default_threads);
}

/// Writes a flat one-object JSON summary (BENCH_*.json convention). Values
/// are emitted verbatim, so pass numbers pre-formatted ("12.5") and quote
/// strings yourself ("\"serial\"").
inline Status WriteBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("WriteBenchJson: cannot open " + path);
  }
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < fields.size(); ++i) {
    std::fprintf(f, "  \"%s\": %s%s\n", fields[i].first.c_str(),
                 fields[i].second.c_str(),
                 i + 1 < fields.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  const bool write_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || write_error) {
    return Status::Internal("WriteBenchJson: write failed for " + path);
  }
  return Status::OK();
}

}  // namespace bench
}  // namespace slicetuner

#endif  // SLICETUNER_BENCH_BENCH_UTIL_H_
