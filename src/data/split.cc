#include "data/split.h"

#include <algorithm>

namespace slicetuner {

Result<TrainValSplit> SplitPerSlice(const Dataset& dataset, int num_slices,
                                    size_t val_per_slice, Rng* rng) {
  if (dataset.empty()) {
    return Status::InvalidArgument("SplitPerSlice: empty dataset");
  }
  if (num_slices <= 0) {
    return Status::InvalidArgument("SplitPerSlice: num_slices must be > 0");
  }
  std::vector<size_t> val_rows;
  std::vector<char> is_val(dataset.size(), 0);
  for (int s = 0; s < num_slices; ++s) {
    const std::vector<size_t> rows = dataset.SliceIndices(s);
    if (rows.empty()) continue;
    size_t take = val_per_slice;
    if (rows.size() <= val_per_slice) {
      take = std::max<size_t>(1, rows.size() / 2);
    }
    const std::vector<size_t> chosen =
        rng->SampleWithoutReplacement(rows.size(), take);
    for (size_t c : chosen) {
      val_rows.push_back(rows[c]);
      is_val[rows[c]] = 1;
    }
  }
  std::vector<size_t> train_rows;
  train_rows.reserve(dataset.size() - val_rows.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (!is_val[i]) train_rows.push_back(i);
  }
  TrainValSplit split;
  split.train = dataset.Subset(train_rows);
  std::sort(val_rows.begin(), val_rows.end());
  split.validation = dataset.Subset(val_rows);
  return split;
}

Result<TrainValSplit> SplitRandom(const Dataset& dataset, double val_fraction,
                                  Rng* rng) {
  if (dataset.empty()) {
    return Status::InvalidArgument("SplitRandom: empty dataset");
  }
  if (val_fraction < 0.0 || val_fraction > 1.0) {
    return Status::InvalidArgument("SplitRandom: val_fraction out of [0,1]");
  }
  const size_t n_val = static_cast<size_t>(
      val_fraction * static_cast<double>(dataset.size()));
  const std::vector<size_t> perm = rng->Permutation(dataset.size());
  std::vector<size_t> val_rows(perm.begin(),
                               perm.begin() + static_cast<ptrdiff_t>(n_val));
  std::vector<size_t> train_rows(perm.begin() + static_cast<ptrdiff_t>(n_val),
                                 perm.end());
  std::sort(val_rows.begin(), val_rows.end());
  std::sort(train_rows.begin(), train_rows.end());
  TrainValSplit split;
  split.train = dataset.Subset(train_rows);
  split.validation = dataset.Subset(val_rows);
  return split;
}

}  // namespace slicetuner
