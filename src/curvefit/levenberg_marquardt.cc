#include "curvefit/levenberg_marquardt.h"

#include <cmath>

#include "common/string_util.h"

namespace slicetuner {

namespace {

// Solves the (tiny) symmetric positive-definite system A x = rhs in place by
// Gaussian elimination with partial pivoting. Returns false when singular.
bool SolveDense(std::vector<std::vector<double>> a, std::vector<double> rhs,
                std::vector<double>* x) {
  const size_t n = rhs.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-14) return false;
    std::swap(a[col], a[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      rhs[r] -= factor * rhs[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t r = n; r-- > 0;) {
    double acc = rhs[r];
    for (size_t c = r + 1; c < n; ++c) acc -= a[r][c] * (*x)[c];
    (*x)[r] = acc / a[r][r];
  }
  return true;
}

double WeightedSse(const ParametricModel& model, const std::vector<double>& xs,
                   const std::vector<double>& ys,
                   const std::vector<double>& ws,
                   const std::vector<double>& p) {
  double sse = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - model.Eval(xs[i], p);
    sse += ws[i] * r * r;
  }
  return sse;
}

}  // namespace

Result<LmFit> LevenbergMarquardt(const ParametricModel& model,
                                 const std::vector<double>& xs,
                                 const std::vector<double>& ys,
                                 const std::vector<double>& weights,
                                 std::vector<double> initial,
                                 const LmOptions& options) {
  const size_t n = xs.size();
  const size_t k = model.num_params();
  if (ys.size() != n) {
    return Status::InvalidArgument("xs/ys size mismatch");
  }
  if (n < k) {
    return Status::InvalidArgument(
        StrFormat("need at least %zu points for %zu parameters, got %zu", k,
                  k, n));
  }
  if (initial.size() != k) {
    return Status::InvalidArgument("initial guess has wrong arity");
  }
  std::vector<double> ws = weights;
  if (ws.empty()) ws.assign(n, 1.0);
  if (ws.size() != n) {
    return Status::InvalidArgument("weights size mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(xs[i]) || !std::isfinite(ys[i]) ||
        !std::isfinite(ws[i]) || ws[i] < 0.0) {
      return Status::InvalidArgument("non-finite or negative-weight input");
    }
  }

  std::vector<double> p = std::move(initial);
  model.ClampParams(&p);
  double damping = options.initial_damping;
  double sse = WeightedSse(model, xs, ys, ws, p);

  LmFit fit;
  std::vector<double> grad_buf(k);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    fit.iterations = iter + 1;
    // Build J^T W J and J^T W r.
    std::vector<std::vector<double>> jtj(k, std::vector<double>(k, 0.0));
    std::vector<double> jtr(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      model.Gradient(xs[i], p, grad_buf.data());
      const double r = ys[i] - model.Eval(xs[i], p);
      for (size_t a = 0; a < k; ++a) {
        jtr[a] += ws[i] * grad_buf[a] * r;
        for (size_t b = a; b < k; ++b) {
          jtj[a][b] += ws[i] * grad_buf[a] * grad_buf[b];
        }
      }
    }
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = 0; b < a; ++b) jtj[a][b] = jtj[b][a];
    }

    bool improved = false;
    for (int attempt = 0; attempt < 12 && !improved; ++attempt) {
      auto damped = jtj;
      for (size_t a = 0; a < k; ++a) damped[a][a] *= 1.0 + damping;
      std::vector<double> step;
      if (!SolveDense(damped, jtr, &step)) {
        damping *= options.damping_up;
        continue;
      }
      std::vector<double> candidate = p;
      for (size_t a = 0; a < k; ++a) candidate[a] += step[a];
      model.ClampParams(&candidate);
      const double cand_sse = WeightedSse(model, xs, ys, ws, candidate);
      if (cand_sse < sse) {
        const double rel = (sse - cand_sse) / std::max(sse, 1e-30);
        p = std::move(candidate);
        sse = cand_sse;
        damping *= options.damping_down;
        damping = std::max(damping, 1e-12);
        improved = true;
        if (rel < options.tolerance) {
          fit.converged = true;
        }
      } else {
        damping *= options.damping_up;
      }
    }
    if (!improved || fit.converged) {
      fit.converged = true;
      break;
    }
  }

  fit.params = std::move(p);
  fit.sse = sse;
  return fit;
}

}  // namespace slicetuner
