// Element-wise activation layers: ReLU, Sigmoid, Tanh, LeakyReLU.

#ifndef SLICETUNER_NN_ACTIVATION_H_
#define SLICETUNER_NN_ACTIVATION_H_

#include <memory>
#include <string>

#include "nn/layer.h"

namespace slicetuner {

/// max(0, x).
class ReluLayer : public Layer {
 public:
  void Forward(const Matrix& x, Matrix* y) override;
  void Backward(const Matrix& grad_y, Matrix* grad_x) override;
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  Matrix input_;
};

/// max(alpha * x, x); alpha in (0, 1).
class LeakyReluLayer : public Layer {
 public:
  explicit LeakyReluLayer(double alpha = 0.01) : alpha_(alpha) {}

  void Forward(const Matrix& x, Matrix* y) override;
  void Backward(const Matrix& grad_y, Matrix* grad_x) override;
  std::string name() const override;
  std::unique_ptr<Layer> Clone() const override;

 private:
  double alpha_;
  Matrix input_;
};

/// 1 / (1 + exp(-x)).
class SigmoidLayer : public Layer {
 public:
  void Forward(const Matrix& x, Matrix* y) override;
  void Backward(const Matrix& grad_y, Matrix* grad_x) override;
  std::string name() const override { return "Sigmoid"; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  Matrix output_;  // sigmoid gradient uses the output value
};

/// tanh(x).
class TanhLayer : public Layer {
 public:
  void Forward(const Matrix& x, Matrix* y) override;
  void Backward(const Matrix& grad_y, Matrix* grad_x) override;
  std::string name() const override { return "Tanh"; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  Matrix output_;
};

}  // namespace slicetuner

#endif  // SLICETUNER_NN_ACTIVATION_H_
