#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace slicetuner {
namespace serve {

ClientConnection::~ClientConnection() { Close(); }

ClientConnection::ClientConnection(ClientConnection&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ClientConnection& ClientConnection::operator=(
    ClientConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void ClientConnection::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Result<ClientConnection> ClientConnection::Connect(int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal(
        "connect() to 127.0.0.1:" + std::to_string(port) +
        " failed: " + std::strerror(errno));
  }
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  ClientConnection conn;
  conn.fd_ = fd;
  return conn;
}

Status ClientConnection::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string payload = line;
  payload += '\n';
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd_, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Internal("send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ClientConnection::ReadLine(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      return Status::ResourceExhausted("timed out waiting for a line");
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("poll() failed");
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::Internal("connection closed by server");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Internal("recv() failed");
    }
    buffer_.append(buf, static_cast<size_t>(n));
  }
}

Result<json::Value> ClientConnection::ReadJson(int timeout_ms) {
  ST_ASSIGN_OR_RETURN(const std::string line, ReadLine(timeout_ms));
  return json::Value::Parse(line);
}

Result<json::Value> ClientConnection::Call(const Request& request,
                                           int timeout_ms) {
  ST_RETURN_NOT_OK(SendLine(request.Serialize()));
  return ReadJson(timeout_ms);
}

}  // namespace serve
}  // namespace slicetuner
