// Tests for the optimization module: budget-simplex projection, the PGD
// allocation solver (cross-checked against the closed-form KKT solver and
// brute force), rounding, and the change-ratio root finder.

#include <gtest/gtest.h>

#include <cmath>

#include "opt/allocation.h"
#include "opt/change_ratio.h"
#include "opt/projection.h"
#include "opt/water_filling.h"

namespace slicetuner {
namespace {

// -------------------------------------------------------------- Projection

TEST(ProjectionTest, FeasiblePointsSatisfyConstraints) {
  const auto d = ProjectOntoBudgetSimplex({10.0, -5.0, 3.0},
                                          {1.0, 2.0, 1.5}, 12.0);
  ASSERT_TRUE(d.ok());
  for (double v : *d) EXPECT_GE(v, 0.0);
  EXPECT_NEAR(Spend(*d, {1.0, 2.0, 1.5}), 12.0, 1e-6);
}

TEST(ProjectionTest, AlreadyFeasibleIsFixedPoint) {
  const std::vector<double> costs = {1.0, 1.0};
  const std::vector<double> v = {3.0, 7.0};  // spend = 10
  const auto d = ProjectOntoBudgetSimplex(v, costs, 10.0);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR((*d)[0], 3.0, 1e-6);
  EXPECT_NEAR((*d)[1], 7.0, 1e-6);
}

TEST(ProjectionTest, ProjectionIsClosestFeasiblePoint) {
  // Verify against a dense sweep on the 2D constraint line.
  const std::vector<double> costs = {1.0, 2.0};
  const std::vector<double> v = {5.0, 1.0};
  const double budget = 6.0;
  const auto d = ProjectOntoBudgetSimplex(v, costs, budget);
  ASSERT_TRUE(d.ok());
  const double proj_dist = std::pow((*d)[0] - v[0], 2.0) +
                           std::pow((*d)[1] - v[1], 2.0);
  for (double x = 0.0; x * costs[0] <= budget; x += 0.001) {
    const double y = (budget - x * costs[0]) / costs[1];
    const double dist =
        std::pow(x - v[0], 2.0) + std::pow(y - v[1], 2.0);
    EXPECT_GE(dist + 1e-6, proj_dist);
  }
}

TEST(ProjectionTest, NegativeInputClampsToZero) {
  const auto d =
      ProjectOntoBudgetSimplex({-100.0, 10.0}, {1.0, 1.0}, 5.0);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR((*d)[0], 0.0, 1e-6);
  EXPECT_NEAR((*d)[1], 5.0, 1e-6);
}

TEST(ProjectionTest, RejectsBadInput) {
  EXPECT_FALSE(ProjectOntoBudgetSimplex({1.0}, {1.0, 2.0}, 1.0).ok());
  EXPECT_FALSE(ProjectOntoBudgetSimplex({1.0}, {0.0}, 1.0).ok());
  EXPECT_FALSE(ProjectOntoBudgetSimplex({1.0}, {1.0}, -1.0).ok());
}

TEST(ProjectionTest, ZeroBudgetGivesZeroVector) {
  const auto d = ProjectOntoBudgetSimplex({5.0, 5.0}, {1.0, 1.0}, 0.0);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR((*d)[0] + (*d)[1], 0.0, 1e-9);
}

// -------------------------------------------------------------- Allocation

AllocationProblem TwoSliceProblem() {
  // Slice 0: high loss, steep curve (big cost-benefit). Slice 1: low loss,
  // nearly flat curve (little benefit). Marginal gains at size 100:
  // 0.5*5*100^-1.5 = 2.5e-3 vs 0.05*0.5*100^-1.05 = 2e-4.
  AllocationProblem p;
  p.curves = {PowerLawCurve{5.0, 0.5}, PowerLawCurve{0.5, 0.05}};
  p.sizes = {100.0, 100.0};
  p.costs = {1.0, 1.0};
  p.budget = 200.0;
  p.lambda = 0.0;
  return p;
}

TEST(AllocationTest, SpendsWholeBudget) {
  const auto r = SolveAllocation(TwoSliceProblem());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(Spend(r->examples, {1.0, 1.0}), 200.0, 1e-6);
  for (double d : r->examples) EXPECT_GE(d, 0.0);
}

TEST(AllocationTest, SteeperCurveGetsMoreData) {
  // Slice 0 has much higher loss and steeper curve: it should receive the
  // bulk of the budget (the paper's toy example of Section 1).
  const auto r = SolveAllocation(TwoSliceProblem());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->examples[0], r->examples[1]);
  EXPECT_GT(r->examples[0], 150.0);
}

TEST(AllocationTest, MatchesKktSolverAtLambdaZero) {
  for (double budget : {50.0, 200.0, 1000.0}) {
    AllocationProblem p = TwoSliceProblem();
    p.budget = budget;
    const auto pgd = SolveAllocation(p);
    const auto kkt = SolveAllocationKkt(p);
    ASSERT_TRUE(pgd.ok());
    ASSERT_TRUE(kkt.ok());
    EXPECT_NEAR(pgd->objective, kkt->objective, 1e-4)
        << "budget " << budget;
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(pgd->examples[i], kkt->examples[i],
                  0.02 * budget + 1.0)
          << "budget " << budget << " slice " << i;
    }
  }
}

TEST(AllocationTest, BeatsBruteForceGridAtLambdaZero) {
  AllocationProblem p = TwoSliceProblem();
  const auto r = SolveAllocation(p);
  ASSERT_TRUE(r.ok());
  double best = HUGE_VAL;
  for (double d0 = 0.0; d0 <= p.budget; d0 += 0.5) {
    const std::vector<double> d = {d0, p.budget - d0};
    best = std::min(best, AllocationObjective(p, d));
  }
  EXPECT_LE(r->objective, best + 1e-4);
}

TEST(AllocationTest, BeatsBruteForceGridWithLambda) {
  AllocationProblem p = TwoSliceProblem();
  p.lambda = 2.0;
  const auto r = SolveAllocation(p);
  ASSERT_TRUE(r.ok());
  double best = HUGE_VAL;
  for (double d0 = 0.0; d0 <= p.budget; d0 += 0.5) {
    const std::vector<double> d = {d0, p.budget - d0};
    best = std::min(best, AllocationObjective(p, d));
  }
  EXPECT_LE(r->objective, best + 1e-3);
}

TEST(AllocationTest, LambdaShiftsBudgetTowardHighLossSlices) {
  // Slice 0: high loss (3.0 at size 200) but almost flat (a = 0.05), so its
  // marginal gain a*loss/x = 0.15/x is below slice 1's 0.5/x (loss 1.0,
  // a = 0.5). Pure loss minimization favors slice 1; a large enough lambda
  // multiplies slice 0's marginal by (1 + lambda/A) and must shift budget
  // toward the unfair (above-average-loss) slice.
  AllocationProblem p;
  p.curves = {PowerLawCurve{3.0 * std::pow(200.0, 0.05), 0.05},
              PowerLawCurve{std::pow(200.0, 0.5), 0.5}};
  p.sizes = {200.0, 200.0};
  p.costs = {1.0, 1.0};
  p.budget = 400.0;
  p.lambda = 0.0;
  const auto r0 = SolveAllocation(p);
  p.lambda = 20.0;
  const auto r20 = SolveAllocation(p);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r20.ok());
  EXPECT_GT(r20->examples[0], r0->examples[0] + 10.0);
}

TEST(AllocationTest, CostsShiftAllocation) {
  // Same curves, but slice 0 is 3x more expensive: it should get less than
  // in the equal-cost problem.
  AllocationProblem equal;
  equal.curves = {PowerLawCurve{2.0, 0.3}, PowerLawCurve{2.0, 0.3}};
  equal.sizes = {100.0, 100.0};
  equal.costs = {1.0, 1.0};
  equal.budget = 300.0;
  equal.lambda = 0.0;
  AllocationProblem skewed = equal;
  skewed.costs = {3.0, 1.0};
  const auto re = SolveAllocation(equal);
  const auto rs = SolveAllocation(skewed);
  ASSERT_TRUE(re.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_NEAR(re->examples[0], re->examples[1], 1.0);  // symmetric
  EXPECT_LT(rs->examples[0], rs->examples[1]);
}

TEST(AllocationTest, ZeroBudgetReturnsZeros) {
  AllocationProblem p = TwoSliceProblem();
  p.budget = 0.0;
  const auto r = SolveAllocation(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->examples[0], 0.0);
  EXPECT_EQ(r->examples[1], 0.0);
}

TEST(AllocationTest, RejectsInvalidProblems) {
  AllocationProblem p = TwoSliceProblem();
  p.costs = {1.0};  // arity mismatch
  EXPECT_FALSE(SolveAllocation(p).ok());
  p = TwoSliceProblem();
  p.costs = {0.0, 1.0};
  EXPECT_FALSE(SolveAllocation(p).ok());
  p = TwoSliceProblem();
  p.budget = -5.0;
  EXPECT_FALSE(SolveAllocation(p).ok());
  p = TwoSliceProblem();
  p.lambda = -1.0;
  EXPECT_FALSE(SolveAllocation(p).ok());
  p = TwoSliceProblem();
  p.curves[0].b = -1.0;
  EXPECT_FALSE(SolveAllocation(p).ok());
  EXPECT_FALSE(SolveAllocation(AllocationProblem()).ok());
}

TEST(AllocationTest, ManySlicesConverges) {
  AllocationProblem p;
  for (int i = 0; i < 20; ++i) {
    p.curves.push_back(
        PowerLawCurve{1.0 + 0.2 * i, 0.1 + 0.03 * i});
    p.sizes.push_back(100.0 + 10.0 * i);
    p.costs.push_back(1.0 + 0.05 * i);
  }
  p.budget = 5000.0;
  p.lambda = 1.0;
  const auto r = SolveAllocation(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(Spend(r->examples, p.costs), 5000.0, 1e-3);
}

// ---------------------------------------------------------------- Rounding

TEST(RoundingTest, IntegersRespectBudget) {
  AllocationProblem p = TwoSliceProblem();
  const auto r = SolveAllocation(p);
  ASSERT_TRUE(r.ok());
  const auto rounded = RoundAllocation(p, r->examples);
  double spend = 0.0;
  for (size_t i = 0; i < rounded.size(); ++i) {
    EXPECT_GE(rounded[i], 0);
    spend += static_cast<double>(rounded[i]) * p.costs[i];
  }
  EXPECT_LE(spend, p.budget + 1e-9);
  // Integer spend should be within one max-cost of the budget.
  EXPECT_GE(spend, p.budget - 1.0 - 1e-9);
}

TEST(RoundingTest, FractionalCostsDoNotOverspend) {
  AllocationProblem p;
  p.curves = {PowerLawCurve{2.0, 0.3}, PowerLawCurve{2.0, 0.3},
              PowerLawCurve{2.0, 0.3}};
  p.sizes = {50.0, 50.0, 50.0};
  p.costs = {1.2, 1.4, 1.5};
  p.budget = 100.0;
  p.lambda = 1.0;
  const auto r = SolveAllocation(p);
  ASSERT_TRUE(r.ok());
  const auto rounded = RoundAllocation(p, r->examples);
  double spend = 0.0;
  for (size_t i = 0; i < rounded.size(); ++i) {
    spend += static_cast<double>(rounded[i]) * p.costs[i];
  }
  EXPECT_LE(spend, p.budget + 1e-9);
  EXPECT_GE(spend, p.budget - 1.5);
}

// --------------------------------------------------------------------- KKT

TEST(KktTest, SpendsExactBudget) {
  const auto r = SolveAllocationKkt(TwoSliceProblem());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(Spend(r->examples, {1.0, 1.0}), 200.0, 1e-6);
}

TEST(KktTest, EqualCurvesEqualSizesSplitEvenly) {
  AllocationProblem p;
  p.curves = {PowerLawCurve{2.0, 0.3}, PowerLawCurve{2.0, 0.3}};
  p.sizes = {100.0, 100.0};
  p.costs = {1.0, 1.0};
  p.budget = 100.0;
  const auto r = SolveAllocationKkt(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->examples[0], 50.0, 0.5);
  EXPECT_NEAR(r->examples[1], 50.0, 0.5);
}

TEST(KktTest, EqualCurvesUnequalSizesEqualizesTotals) {
  // With identical curves, the optimum tops the smaller slice up first —
  // exactly the paper's observation that Water filling is optimal for
  // identical curves.
  AllocationProblem p;
  p.curves = {PowerLawCurve{2.0, 0.3}, PowerLawCurve{2.0, 0.3}};
  p.sizes = {50.0, 150.0};
  p.costs = {1.0, 1.0};
  p.budget = 100.0;
  const auto r = SolveAllocationKkt(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(p.sizes[0] + r->examples[0], p.sizes[1] + r->examples[1], 1.0);
}

TEST(KktTest, RejectsInvalid) {
  AllocationProblem p = TwoSliceProblem();
  p.sizes.pop_back();
  EXPECT_FALSE(SolveAllocationKkt(p).ok());
}

// ------------------------------------------------------------- Max penalty

TEST(MaxPenaltyTest, ObjectiveUsesOnlyWorstSlice) {
  AllocationProblem p;
  p.curves = {PowerLawCurve{4.0, 0.1}, PowerLawCurve{3.0, 0.1},
              PowerLawCurve{1.0, 0.1}};
  p.sizes = {100.0, 100.0, 100.0};
  p.costs = {1.0, 1.0, 1.0};
  p.budget = 0.0;
  p.lambda = 2.0;
  const std::vector<double> d = {0.0, 0.0, 0.0};
  p.penalty = PenaltyKind::kAverage;
  const double avg_obj = AllocationObjective(p, d);
  p.penalty = PenaltyKind::kMax;
  const double max_obj = AllocationObjective(p, d);
  // Two slices exceed the average loss, so the average penalty counts both
  // while the max penalty counts only the worst one.
  EXPECT_LT(max_obj, avg_obj);
  // Both exceed the raw loss sum.
  const double raw = p.curves[0].Eval(100.0) + p.curves[1].Eval(100.0) +
                     p.curves[2].Eval(100.0);
  EXPECT_GT(max_obj, raw);
}

TEST(MaxPenaltyTest, SolverBeatsBruteForceGrid) {
  AllocationProblem p;
  p.curves = {PowerLawCurve{5.0, 0.5}, PowerLawCurve{0.5, 0.05}};
  p.sizes = {100.0, 100.0};
  p.costs = {1.0, 1.0};
  p.budget = 200.0;
  p.lambda = 3.0;
  p.penalty = PenaltyKind::kMax;
  const auto r = SolveAllocation(p);
  ASSERT_TRUE(r.ok());
  double best = HUGE_VAL;
  for (double d0 = 0.0; d0 <= p.budget; d0 += 0.5) {
    best = std::min(best,
                    AllocationObjective(p, {d0, p.budget - d0}));
  }
  EXPECT_LE(r->objective, best + 1e-3);
}

TEST(MaxPenaltyTest, PushesBudgetToWorstSlice) {
  // Slice 0 is the worst and nearly flat; a large max-penalty lambda must
  // route more budget there than lambda = 0 does.
  AllocationProblem p;
  p.curves = {PowerLawCurve{3.0 * std::pow(200.0, 0.05), 0.05},
              PowerLawCurve{std::pow(200.0, 0.5), 0.5}};
  p.sizes = {200.0, 200.0};
  p.costs = {1.0, 1.0};
  p.budget = 400.0;
  p.penalty = PenaltyKind::kMax;
  p.lambda = 0.0;
  const auto r0 = SolveAllocation(p);
  p.lambda = 40.0;
  const auto r40 = SolveAllocation(p);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r40.ok());
  EXPECT_GT(r40->examples[0], r0->examples[0] + 10.0);
}

// -------------------------------------------------------------- ChangeRatio

TEST(ChangeRatioTest, ImbalanceRatioBasics) {
  EXPECT_DOUBLE_EQ(ImbalanceRatio({10.0, 20.0, 30.0}), 3.0);
  EXPECT_DOUBLE_EQ(ImbalanceRatio({5.0}), 1.0);
}

TEST(ChangeRatioTest, PaperExample) {
  // Section 5.2's worked example: sizes [10,10], plan [10,40], target 2.
  // Solution: (10+40x)/(10+10x) = 2 -> x = 0.5.
  const auto x = GetChangeRatio({10.0, 10.0}, {10.0, 40.0}, 2.0);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(*x, 0.5, 1e-6);
}

TEST(ChangeRatioTest, FullPlanWithinLimitReturnsOne) {
  // After-IR is 1.5; target 2.0 is not exceeded.
  const auto x = GetChangeRatio({10.0, 10.0}, {0.0, 5.0}, 2.0);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(*x, 1.0);
}

TEST(ChangeRatioTest, DecreasingImbalanceDirection) {
  // Acquiring only for the small slice decreases IR from 4 to 1.5;
  // a target of 2 (between them) must be achievable.
  const auto x = GetChangeRatio({10.0, 40.0}, {30.0, 0.0}, 2.0);
  ASSERT_TRUE(x.ok());
  const double s0 = 10.0 + *x * 30.0;
  EXPECT_NEAR(40.0 / s0, 2.0, 1e-6);
}

TEST(ChangeRatioTest, SolutionHitsTargetExactly) {
  const std::vector<double> sizes = {100.0, 250.0, 60.0};
  const std::vector<double> plan = {400.0, 0.0, 100.0};
  const double start = ImbalanceRatio(sizes);
  std::vector<double> after(3);
  for (int i = 0; i < 3; ++i) after[i] = sizes[i] + plan[i];
  const double full = ImbalanceRatio(after);
  const double target = 0.5 * (start + full);
  const auto x = GetChangeRatio(sizes, plan, target);
  ASSERT_TRUE(x.ok());
  std::vector<double> scaled(3);
  for (int i = 0; i < 3; ++i) scaled[i] = sizes[i] + *x * plan[i];
  EXPECT_NEAR(ImbalanceRatio(scaled), target, 1e-6);
}

TEST(ChangeRatioTest, RejectsInvalidInput) {
  EXPECT_FALSE(GetChangeRatio({}, {}, 2.0).ok());
  EXPECT_FALSE(GetChangeRatio({0.0, 10.0}, {1.0, 1.0}, 2.0).ok());
  EXPECT_FALSE(GetChangeRatio({10.0}, {1.0, 1.0}, 2.0).ok());
  EXPECT_FALSE(GetChangeRatio({10.0, 10.0}, {-1.0, 1.0}, 2.0).ok());
}

}  // namespace
}  // namespace slicetuner
