// Span: attributes one operation's wall time to named stages. A session's
// tuning round opens a span, times its estimate/plan/acquire stages with
// RAII StageTimers, and attaches the summary JSON to the round's streamed
// `progress` frame — so a client watching a stream sees where each round's
// time went (docs/OBSERVABILITY.md, "Spans").
//
// Spans are deliberately not thread-safe: one span belongs to the single
// thread running the operation it describes. Cross-thread aggregates are
// the registry's job (the same stages also feed process-wide histograms).

#ifndef SLICETUNER_OBS_SPAN_H_
#define SLICETUNER_OBS_SPAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace slicetuner {
namespace obs {

class Span {
 public:
  explicit Span(std::string name)
      : name_(std::move(name)), start_ns_(MonotonicNanos()) {}

  /// Adds `ns` to the named stage (stages accumulate: a stage entered
  /// twice reports the total).
  void RecordStage(const std::string& stage, uint64_t ns);

  /// Nanoseconds since the span was opened.
  uint64_t ElapsedNanos() const { return MonotonicNanos() - start_ns_; }

  const std::string& name() const { return name_; }

  /// {"name":...,"total_ms":X,"stages":{"estimate_ms":...,...}} — stage
  /// keys carry a _ms suffix; stages never recorded are absent. Total is
  /// wall time since construction, so it bounds (not equals) the stage sum:
  /// un-attributed time is visible as the gap.
  json::Value ToJson() const;

 private:
  std::string name_;
  uint64_t start_ns_;
  std::vector<std::pair<std::string, uint64_t>> stages_;
};

/// RAII stage timer: adds the elapsed wall time to `span`'s stage on
/// destruction, and optionally records the same duration into a registry
/// histogram (the process-wide view of the per-request stage).
class StageTimer {
 public:
  StageTimer(Span* span, std::string stage, Histogram* histogram = nullptr)
      : span_(span),
        stage_(std::move(stage)),
        histogram_(histogram),
        start_ns_(MonotonicNanos()) {}
  ~StageTimer() {
    const uint64_t elapsed = MonotonicNanos() - start_ns_;
    if (span_ != nullptr) span_->RecordStage(stage_, elapsed);
    if (histogram_ != nullptr) histogram_->Record(elapsed);
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Span* span_;
  std::string stage_;
  Histogram* histogram_;
  uint64_t start_ns_;
};

}  // namespace obs
}  // namespace slicetuner

#endif  // SLICETUNER_OBS_SPAN_H_
