#include "common/table_printer.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace slicetuner {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_sep = [&] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_row(row);
    }
  }
  print_sep();
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace slicetuner
