#include "nn/residual.h"

#include "common/string_util.h"

namespace slicetuner {

ResidualBlock::ResidualBlock(size_t dim, size_t hidden_dim, Rng* rng)
    : fc1_(dim, hidden_dim, rng, Init::kHe),
      fc2_(hidden_dim, dim, rng, Init::kGlorot) {}

void ResidualBlock::Forward(const Matrix& x, Matrix* y) {
  fc1_.Forward(x, &hidden_pre_);
  hidden_post_ = hidden_pre_;
  double* h = hidden_post_.data();
  for (size_t i = 0; i < hidden_post_.size(); ++i) {
    if (h[i] < 0.0) h[i] = 0.0;
  }
  fc2_.Forward(hidden_post_, y);
  *y += x;  // skip connection
}

void ResidualBlock::Backward(const Matrix& grad_y, Matrix* grad_x) {
  // Branch path: through fc2, ReLU, fc1.
  Matrix grad_hidden_post;
  fc2_.Backward(grad_y, &grad_hidden_post);
  const double* pre = hidden_pre_.data();
  double* g = grad_hidden_post.data();
  for (size_t i = 0; i < grad_hidden_post.size(); ++i) {
    if (pre[i] <= 0.0) g[i] = 0.0;
  }
  fc1_.Backward(grad_hidden_post, grad_x);
  // Skip path adds the incoming gradient.
  *grad_x += grad_y;
}

std::vector<Matrix*> ResidualBlock::Params() {
  std::vector<Matrix*> out = fc1_.Params();
  for (Matrix* p : fc2_.Params()) out.push_back(p);
  return out;
}

std::vector<Matrix*> ResidualBlock::Grads() {
  std::vector<Matrix*> out = fc1_.Grads();
  for (Matrix* g : fc2_.Grads()) out.push_back(g);
  return out;
}

void ResidualBlock::ResetParameters(Rng* rng) {
  fc1_.ResetParameters(rng);
  fc2_.ResetParameters(rng);
}

std::string ResidualBlock::name() const {
  return StrFormat("Residual(%zu,h=%zu)", fc1_.in_dim(), fc1_.out_dim());
}

std::unique_ptr<Layer> ResidualBlock::Clone() const {
  return std::make_unique<ResidualBlock>(*this);
}

}  // namespace slicetuner
