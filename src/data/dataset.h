// Dataset: the training data D of the paper, partitioned into slices
// (Section 2.1). Row storage with per-row label and slice id; features are
// materialized into a Matrix on demand for model training.

#ifndef SLICETUNER_DATA_DATASET_H_
#define SLICETUNER_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace slicetuner {

/// One labeled example assigned to a slice.
struct Example {
  std::vector<double> features;
  int label = 0;
  int slice = 0;
};

/// A collection of examples with fixed feature dimensionality. Slices
/// partition the dataset: each row belongs to exactly one slice id in
/// [0, num_slices).
class Dataset {
 public:
  Dataset() : dim_(0) {}
  explicit Dataset(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Appends one example. Fails if the feature dimension mismatches.
  Status Append(const Example& example);

  /// Appends all rows of `other` (dims must match; empty datasets adopt the
  /// other's dim).
  Status Merge(const Dataset& other);

  int label(size_t i) const { return labels_[i]; }
  int slice(size_t i) const { return slices_[i]; }
  const double* features(size_t i) const {
    return features_.data() + i * dim_;
  }

  Example ExampleAt(size_t i) const;

  /// Largest slice id present + 1 (0 when empty).
  int MaxSliceId() const;

  /// Largest label present + 1 (0 when empty).
  int NumClasses() const;

  /// Row indices belonging to `slice`, in row order.
  std::vector<size_t> SliceIndices(int slice) const;

  /// sizes[s] = number of rows in slice s, for s in [0, num_slices).
  std::vector<size_t> SliceSizes(int num_slices) const;

  /// New dataset with only the given rows (in order).
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// New dataset with only the rows in `slice`.
  Dataset SliceSubset(int slice) const;

  /// Uniform random subset of `count` rows (without replacement).
  Dataset Sample(size_t count, Rng* rng) const;

  /// Per-slice stratified random subset: keeps ceil(fraction * |s|) rows of
  /// each slice s (at least min_per_slice if the slice has that many).
  Dataset StratifiedSample(double fraction, size_t min_per_slice,
                           int num_slices, Rng* rng) const;

  /// Features of all rows as an n x dim matrix.
  Matrix FeatureMatrix() const;

  /// Features of the given rows.
  Matrix GatherFeatures(const std::vector<size_t>& indices) const;

  /// All labels (copy).
  std::vector<int> Labels() const { return labels_; }

  /// Labels of the given rows.
  std::vector<int> GatherLabels(const std::vector<size_t>& indices) const;

 private:
  size_t dim_;
  std::vector<double> features_;  // row-major, size() * dim_
  std::vector<int> labels_;
  std::vector<int> slices_;
};

}  // namespace slicetuner

#endif  // SLICETUNER_DATA_DATASET_H_
