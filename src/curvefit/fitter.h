// High-level curve fitting used by the Learning Curve Estimator:
// size-weighted power-law fits with multi-draw averaging (the paper draws 5
// curves and averages them for reliability, Section 4.1).

#ifndef SLICETUNER_CURVEFIT_FITTER_H_
#define SLICETUNER_CURVEFIT_FITTER_H_

#include <vector>

#include "common/json.h"
#include "common/random.h"
#include "common/result.h"
#include "curvefit/power_law.h"

namespace slicetuner {

/// One measured point: a model trained with `size` slice examples had
/// validation loss `loss`.
struct CurvePoint {
  double size = 0.0;
  double loss = 0.0;
};

/// JSON forms used by the durable store's curve-cache snapshots: a point is
/// the two-element array [size, loss], a point list an array of those.
/// Doubles round-trip bit-exactly.
json::Value CurvePointsToJson(const std::vector<CurvePoint>& points);
Result<std::vector<CurvePoint>> CurvePointsFromJson(const json::Value& value);

struct FitOptions {
  /// Weight each point proportionally to its subset size (losses measured on
  /// small subsets are noisier — Figure 5's high-variance region).
  bool size_weighted = true;
  /// Number of bootstrap draws averaged into the final curve (paper: 5).
  int num_draws = 5;
  /// Seed for the bootstrap resampling.
  uint64_t seed = 1234;
};

/// Fits y = b x^(-a) to the points with weighted Levenberg–Marquardt,
/// initialized by log-log regression. Errors on fewer than 2 usable points.
Result<PowerLawCurve> FitPowerLaw(const std::vector<CurvePoint>& points,
                                  bool size_weighted = true);

/// Robust fit: averages `num_draws` bootstrap fits (resampling points with
/// replacement); falls back to the plain fit if bootstrap fits fail.
Result<PowerLawCurve> FitPowerLawAveraged(
    const std::vector<CurvePoint>& points, const FitOptions& options);

/// Goodness of fit of a curve on the points (R^2 in log space).
double CurveLogR2(const PowerLawCurve& curve,
                  const std::vector<CurvePoint>& points);

}  // namespace slicetuner

#endif  // SLICETUNER_CURVEFIT_FITTER_H_
