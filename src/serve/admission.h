// Admission control for the tuning service: bounded session-affinity
// sharded FIFOs with load shedding and micro-batching, plus an unbounded
// cancel-resolution lane.
//
//  * Shedding — Admit() rejects with ResourceExhausted (and a retry-after
//    hint the protocol layer forwards to clients) when the queues hold
//    max_queue_depth sessions in total, or when the executor backlog probe
//    — wired to ThreadPool::PendingCount() by the server — reports the
//    pool already saturated. Rejecting at the door keeps latency bounded
//    instead of letting the queue grow without limit.
//
//  * Micro-batching — NextBatch(shard) blocks until work arrives on that
//    shard, then drains up to max_batch compatible sessions at once. The
//    dispatcher fans the whole batch out through one
//    ExperimentRunner::RunAll, so concurrent curve-estimation jobs share
//    one engine fan-out instead of serializing per-request.
//
//  * Session affinity — a session id always lands on shard
//    `id % num_shards`, so every job of one session is dispatched by the
//    same dispatcher thread, in submit order, and one hot session (long
//    jobs, tight resubmit loop) can only ever saturate its own shard
//    while the other dispatchers keep draining theirs.
//
//  * Cancel lane — AdmitCancel() enqueues a session whose pending cancel
//    just needs resolving (RunJob with the cancel flag set resolves
//    without running). The lane is unbounded and never shed: losing a
//    cancel would strand the session queued forever, and each entry costs
//    one O(1) resolution, not a tuning job.

#ifndef SLICETUNER_SERVE_ADMISSION_H_
#define SLICETUNER_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace slicetuner {
namespace serve {

struct AdmissionOptions {
  /// Queue slots (across all shards) before Admit sheds load.
  size_t max_queue_depth = 16;
  /// Sessions drained per NextBatch (one engine fan-out).
  size_t max_batch = 8;
  /// Retry hint attached to shed rejections.
  int retry_after_ms = 50;
  /// When > 0, Admit also sheds while backlog_probe() exceeds this bound.
  size_t max_executor_backlog = 0;
  /// Executor saturation signal (e.g. the shared pool's PendingCount).
  std::function<size_t()> backlog_probe;
  /// Session-affinity dispatch shards; the server runs one dispatcher
  /// thread per shard. 1 preserves the single strict-FIFO dispatcher.
  size_t num_shards = 1;
};

struct AdmissionStats {
  size_t admitted = 0;
  size_t shed_queue_full = 0;
  size_t shed_backlog = 0;
  size_t batches = 0;
  size_t max_depth_seen = 0;
  size_t cancels_admitted = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// Enqueues a session id on its affinity shard, or sheds:
  /// ResourceExhausted with the configured retry-after encoded for the
  /// caller via retry_after_ms().
  Status Admit(uint64_t session_id);

  /// Blocks until at least one session is queued on `shard` (returning up
  /// to max_batch of them, FIFO) or Stop() was called (returning what is
  /// left on the shard, possibly empty).
  std::vector<uint64_t> NextBatch(size_t shard = 0);

  /// Enqueues a session on the cancel-resolution lane (unbounded, never
  /// shed; accepted even after Stop so in-flight sheds still resolve).
  void AdmitCancel(uint64_t session_id);

  /// Blocks until cancel work arrives (returning all of it) or Stop() was
  /// called (returning what is left, possibly empty).
  std::vector<uint64_t> NextCancels();

  /// Unblocks NextBatch/NextCancels; subsequent Admit calls fail
  /// FailedPrecondition.
  void Stop();
  bool stopped() const;

  /// Queued sessions across all shards (cancel lane excluded).
  size_t depth() const;
  size_t num_shards() const { return options_.num_shards; }
  int retry_after_ms() const { return options_.retry_after_ms; }
  AdmissionStats stats() const;

 private:
  size_t TotalDepthLocked() const;

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable cancel_cv_;
  std::vector<std::deque<uint64_t>> queues_;  // one per shard
  std::deque<uint64_t> cancels_;
  AdmissionStats stats_;
  bool stopped_ = false;
};

}  // namespace serve
}  // namespace slicetuner

#endif  // SLICETUNER_SERVE_ADMISSION_H_
