#include "data/synthetic.h"

#include <cmath>

#include "common/string_util.h"

namespace slicetuner {

namespace {

// Stable per-preset RNG stream ids: each preset derives its generator state
// via Rng(seed).Fork(stream) instead of ad-hoc xor salts, the same
// derivation the engine uses for per-task streams (see common/random.h).
enum PresetStream : uint64_t {
  kFashionStream = 0,
  kMixedStream = 1,
  kFaceStream = 2,
  kCensusStream = 3,
};

}  // namespace

std::vector<double> RandomCentroid(Rng* rng, size_t dim, double scale) {
  std::vector<double> v(dim);
  double norm = 0.0;
  for (auto& x : v) {
    x = rng->Normal();
    norm += x * x;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (auto& x : v) x *= scale / norm;
  return v;
}

std::vector<double> AddVec(const std::vector<double>& a,
                           const std::vector<double>& b, double beta) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + beta * b[i];
  return out;
}

SyntheticGenerator::SyntheticGenerator(size_t dim, int num_classes,
                                       std::vector<SliceModel> slices)
    : dim_(dim), num_classes_(num_classes), slices_(std::move(slices)) {}

Example SyntheticGenerator::Generate(int slice, Rng* rng) const {
  const SliceModel& model = slices_[static_cast<size_t>(slice)];
  // Pick a component by weight.
  std::vector<double> weights;
  weights.reserve(model.components.size());
  for (const auto& c : model.components) weights.push_back(c.weight);
  const GaussianComponent& comp =
      model.components[rng->Categorical(weights)];

  Example e;
  e.slice = slice;
  e.label = comp.label;
  e.features.resize(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    e.features[i] = rng->Normal(comp.mean[i], comp.sigma);
  }
  if (model.label_noise > 0.0 && rng->Bernoulli(model.label_noise)) {
    e.label = static_cast<int>(rng->UniformInt(
        static_cast<uint64_t>(num_classes_)));
  }
  return e;
}

Dataset SyntheticGenerator::GenerateDataset(const std::vector<size_t>& counts,
                                            Rng* rng) const {
  Dataset out(dim_);
  for (size_t s = 0; s < counts.size(); ++s) {
    for (size_t i = 0; i < counts[s]; ++i) {
      (void)out.Append(Generate(static_cast<int>(s), rng));
    }
  }
  return out;
}

DatasetPreset MakeFashionLike(uint64_t seed) {
  constexpr size_t kDim = 16;
  constexpr int kClasses = 10;
  Rng rng = Rng(seed).Fork(kFashionStream);

  std::vector<std::vector<double>> centroids;
  centroids.reserve(kClasses);
  for (int c = 0; c < kClasses; ++c) {
    centroids.push_back(RandomCentroid(&rng, kDim, 2.2));
  }
  // Make a confusable cluster {2, 4, 6} (shirt / pullover / coat): their
  // centroids are pulled toward a common point, which raises their losses and
  // flattens the benefit gap — Slice Tuner should route most budget there
  // (matching slices #2, #4, #6 in the paper's Table 3).
  const std::vector<double> shirt_anchor = centroids[2];
  centroids[4] = AddVec(shirt_anchor, RandomCentroid(&rng, kDim, 1.0), 0.9);
  centroids[6] = AddVec(shirt_anchor, RandomCentroid(&rng, kDim, 1.0), 0.8);

  const double sigmas[kClasses] = {1.0,  0.8, 1.45, 1.1, 1.5,
                                   0.75, 1.5, 0.9,  0.95, 0.7};
  const double noise[kClasses] = {0.04, 0.02, 0.08, 0.05, 0.08,
                                  0.02, 0.09, 0.03, 0.03, 0.02};

  std::vector<SliceModel> slices(kClasses);
  for (int c = 0; c < kClasses; ++c) {
    GaussianComponent comp;
    comp.mean = centroids[static_cast<size_t>(c)];
    comp.sigma = sigmas[c];
    comp.label = c;
    slices[static_cast<size_t>(c)].components = {comp};
    slices[static_cast<size_t>(c)].label_noise = noise[c];
  }

  DatasetPreset preset;
  preset.name = "Fashion-like";
  const char* kNames[kClasses] = {"T-shirt", "Trouser",  "Pullover", "Dress",
                                  "Coat",    "Sandal",   "Shirt",    "Sneaker",
                                  "Bag",     "AnkleBoot"};
  preset.slice_names.assign(kNames, kNames + kClasses);
  preset.generator = SyntheticGenerator(kDim, kClasses, std::move(slices));
  preset.model_spec = ModelSpec{kDim, kClasses, {64}, 0, 32};
  preset.trainer.epochs = 20;
  preset.trainer.learning_rate = 0.01;
  preset.costs.assign(kClasses, 1.0);
  return preset;
}

DatasetPreset MakeMixedLike(uint64_t seed) {
  constexpr size_t kDim = 16;
  constexpr int kClasses = 20;
  Rng rng = Rng(seed).Fork(kMixedStream);

  std::vector<SliceModel> slices(kClasses);
  std::vector<std::string> names;
  names.reserve(kClasses);
  for (int c = 0; c < kClasses; ++c) {
    const bool is_digit = c >= 10;
    GaussianComponent comp;
    // Digits (MNIST): far apart and clean -> low loss, steep power law.
    // Fashion items: closer together and noisier -> flatter curves.
    comp.mean = RandomCentroid(&rng, kDim, is_digit ? 2.9 : 2.0);
    comp.sigma = is_digit ? 0.65 + 0.02 * (c - 10) : 1.25 + 0.03 * c;
    comp.label = c;
    slices[static_cast<size_t>(c)].components = {comp};
    slices[static_cast<size_t>(c)].label_noise = is_digit ? 0.01 : 0.05;
    names.push_back(is_digit ? StrFormat("Digit%d", c - 10)
                             : StrFormat("Fashion%d", c));
  }

  DatasetPreset preset;
  preset.name = "Mixed-like";
  preset.slice_names = std::move(names);
  preset.generator = SyntheticGenerator(kDim, kClasses, std::move(slices));
  preset.model_spec = ModelSpec{kDim, kClasses, {64}, 0, 32};
  preset.trainer.epochs = 20;
  preset.trainer.learning_rate = 0.01;
  preset.costs.assign(kClasses, 1.0);
  return preset;
}

DatasetPreset MakeFaceLike(uint64_t seed) {
  constexpr size_t kDim = 16;
  constexpr int kRaces = 4;  // label = race
  constexpr int kSlices = 8; // race x gender
  Rng rng = Rng(seed).Fork(kFaceStream);

  std::vector<std::vector<double>> race_centroids;
  race_centroids.reserve(kRaces);
  for (int r = 0; r < kRaces; ++r) {
    race_centroids.push_back(RandomCentroid(&rng, kDim, 2.0));
  }
  // A shared gender direction: same-race slices differ only by +-0.45 along
  // it, making e.g. White_Male data informative about White_Female (the
  // positive-influence pair of Figure 7).
  const std::vector<double> gender_dir = RandomCentroid(&rng, kDim, 0.9);

  const double sigmas[kSlices] = {1.10, 1.15, 1.35, 1.25,
                                  1.20, 1.15, 1.30, 1.40};
  std::vector<SliceModel> slices(kSlices);
  std::vector<std::string> names;
  const char* kRaceNames[kRaces] = {"White", "Black", "Asian", "Indian"};
  for (int r = 0; r < kRaces; ++r) {
    for (int g = 0; g < 2; ++g) {
      const int s = r * 2 + g;
      GaussianComponent comp;
      comp.mean = AddVec(race_centroids[static_cast<size_t>(r)], gender_dir,
                         g == 0 ? -0.5 : 0.5);
      comp.sigma = sigmas[s];
      comp.label = r;
      slices[static_cast<size_t>(s)].components = {comp};
      slices[static_cast<size_t>(s)].label_noise = 0.06;
      names.push_back(StrFormat("%s_%s", kRaceNames[r],
                                g == 0 ? "Male" : "Female"));
    }
  }

  DatasetPreset preset;
  preset.name = "Face-like";
  preset.slice_names = std::move(names);
  preset.generator = SyntheticGenerator(kDim, kRaces, std::move(slices));
  preset.model_spec = ModelSpec{kDim, kRaces, {64}, 0, 32};
  preset.trainer.epochs = 20;
  preset.trainer.learning_rate = 0.01;
  // Table 1 of the paper: AMT collection costs per slice.
  preset.costs = {1.2, 1.2, 1.0, 1.2, 1.4, 1.1, 1.4, 1.5};
  return preset;
}

DatasetPreset MakeCensusLike(uint64_t seed) {
  // Higher-dimensional than the image stand-ins: with a linear model, the
  // estimation error decays slowly in n/d, giving the gently sloped curves
  // of Figure 8d (a ~ 0.06-0.10) instead of an instantly saturated model.
  constexpr size_t kDim = 28;
  constexpr int kSlices = 4;
  Rng rng = Rng(seed).Fork(kCensusStream);

  // One global linear boundary direction; slices differ in margin (how
  // separable) and label noise (how irreducible the loss is).
  const std::vector<double> w_dir = RandomCentroid(&rng, kDim, 1.0);
  const double margins[kSlices] = {0.85, 0.65, 0.5, 0.4};
  const double noise[kSlices] = {0.05, 0.07, 0.09, 0.11};
  const double positive_rate[kSlices] = {0.30, 0.25, 0.20, 0.15};

  std::vector<SliceModel> slices(kSlices);
  std::vector<std::string> names = {"White_Male", "White_Female",
                                    "Black_Male", "Black_Female"};
  for (int s = 0; s < kSlices; ++s) {
    const std::vector<double> mu = RandomCentroid(&rng, kDim, 0.4);
    GaussianComponent neg;
    neg.mean = AddVec(mu, w_dir, -margins[s]);
    neg.sigma = 1.0;
    neg.label = 0;
    neg.weight = 1.0 - positive_rate[s];
    GaussianComponent pos;
    pos.mean = AddVec(mu, w_dir, margins[s]);
    pos.sigma = 1.0;
    pos.label = 1;
    pos.weight = positive_rate[s];
    slices[static_cast<size_t>(s)].components = {neg, pos};
    slices[static_cast<size_t>(s)].label_noise = noise[s];
  }

  DatasetPreset preset;
  preset.name = "Census-like";
  preset.slice_names = std::move(names);
  preset.generator = SyntheticGenerator(kDim, 2, std::move(slices));
  // Paper: fully connected network with no hidden layers (logistic).
  preset.model_spec = ModelSpec{kDim, 2, {}, 0, 32};
  preset.trainer.epochs = 15;
  preset.trainer.learning_rate = 0.05;
  preset.costs.assign(kSlices, 1.0);
  return preset;
}

Result<DatasetPreset> MakePresetByName(const std::string& name,
                                       uint64_t seed) {
  if (name == "fashion") return MakeFashionLike(seed == 0 ? 7 : seed);
  if (name == "mixed") return MakeMixedLike(seed == 0 ? 11 : seed);
  if (name == "face") return MakeFaceLike(seed == 0 ? 13 : seed);
  if (name == "census") return MakeCensusLike(seed == 0 ? 17 : seed);
  return Status::NotFound("unknown dataset preset: " + name);
}

std::vector<DatasetPreset> AllPresets() {
  std::vector<DatasetPreset> out;
  out.push_back(MakeFashionLike());
  out.push_back(MakeMixedLike());
  out.push_back(MakeFaceLike());
  out.push_back(MakeCensusLike());
  return out;
}

}  // namespace slicetuner
