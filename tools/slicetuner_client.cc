// slicetuner_client: command-line client for the tuning service.
//
// Usage:
//   slicetuner_client --port=N submit --session=s1 [--slices=4] [--rows=60]
//                     [--budget=120] [--rounds=2] [--method=moderate]
//                     [--seed=1] [--append=0] [--append-slice=0]
//   slicetuner_client --port=N poll --session=s1
//   slicetuner_client --port=N stream --session=s1   # prints frames to done
//   slicetuner_client --port=N cancel --session=s1
//   slicetuner_client --port=N stats
//   slicetuner_client --port=N metrics [--prefix=serve_]
//       process metrics registry JSON, optionally name-prefix filtered
//   slicetuner_client --port=N trace [--session=s1] [--trace-id=HEX]
//                     [--limit=N]
//       recent flight-recorder events (merged timeline) and, with a
//       session filter, the last job's span tree
//   slicetuner_client --port=N snapshot   # checkpoint the state dir
//   slicetuner_client --port=N restore    # re-merge state-dir sessions
//   slicetuner_client --port=N shutdown
//
// Any command may carry --trace-id=HEX (16 hex chars): the id is installed
// for the request's whole life on the server and echoed in the response;
// on `trace` it is the event filter instead.
//
// Every server line is echoed to stdout. Exit code 0 iff the request was
// acknowledged ok (and, for stream, the session finished with a done frame).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: slicetuner_client --port=N "
               "(submit|poll|stream|cancel|stats|metrics|trace|snapshot|"
               "restore|shutdown) [--session=NAME] [--trace-id=HEX] "
               "[flags]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slicetuner;

  InitLoggingFromEnv();

  const int port = bench::ParseIntFlag(argc, argv, "--port=", 0);
  if (port <= 0) return Usage();

  std::string command;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      command = argv[i];
      break;
    }
  }
  if (command.empty()) return Usage();

  serve::Request request;
  request.session = bench::ParseStringFlag(argc, argv, "--session=", "");
  request.trace_id = bench::ParseStringFlag(argc, argv, "--trace-id=", "");
  if (command == "submit") {
    request.type = serve::RequestType::kSubmitJob;
    request.job.session = request.session;
    // 0 = unspecified: the server defaults new sessions to 4 slices and
    // lets resumed sessions inherit their existing count.
    request.job.num_slices = bench::ParseIntFlag(argc, argv, "--slices=", 0);
    request.job.rows_per_slice =
        bench::ParseIntFlag(argc, argv, "--rows=", 60);
    request.job.budget =
        static_cast<double>(bench::ParseIntFlag(argc, argv, "--budget=", 120));
    request.job.rounds = bench::ParseIntFlag(argc, argv, "--rounds=", 2);
    request.job.method =
        bench::ParseStringFlag(argc, argv, "--method=", "moderate");
    request.job.seed = static_cast<uint64_t>(
        bench::ParseIntFlag(argc, argv, "--seed=", 1));
    request.job.append_rows = bench::ParseIntFlag(argc, argv, "--append=", 0);
    request.job.append_slice =
        bench::ParseIntFlag(argc, argv, "--append-slice=", 0);
  } else if (command == "poll") {
    request.type = serve::RequestType::kPoll;
  } else if (command == "stream") {
    request.type = serve::RequestType::kStream;
  } else if (command == "cancel") {
    request.type = serve::RequestType::kCancel;
  } else if (command == "stats") {
    request.type = serve::RequestType::kStats;
  } else if (command == "metrics") {
    request.type = serve::RequestType::kMetrics;
    request.prefix = bench::ParseStringFlag(argc, argv, "--prefix=", "");
  } else if (command == "trace") {
    request.type = serve::RequestType::kTrace;
    request.limit = bench::ParseIntFlag(argc, argv, "--limit=", 0);
  } else if (command == "snapshot") {
    request.type = serve::RequestType::kSnapshot;
  } else if (command == "restore") {
    request.type = serve::RequestType::kRestore;
  } else if (command == "shutdown") {
    request.type = serve::RequestType::kShutdown;
  } else {
    return Usage();
  }

  auto connection = serve::ClientConnection::Connect(port);
  if (!connection.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 connection.status().ToString().c_str());
    return 1;
  }

  const int timeout_ms = bench::ParseIntFlag(argc, argv, "--timeout-ms=",
                                             /*default=*/60000);
  auto response = connection->Call(request, timeout_ms);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->Dump().c_str());
  if (!serve::IsOkResponse(*response)) return 1;

  if (request.type != serve::RequestType::kStream) return 0;

  // Stream mode: print frames until the done frame arrives.
  for (;;) {
    auto frame = connection->ReadJson(timeout_ms);
    if (!frame.ok()) {
      std::fprintf(stderr, "error: %s\n", frame.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", frame->Dump().c_str());
    std::fflush(stdout);
    if (frame->GetString("frame") == "done") {
      const std::string state = frame->GetString("state");
      return (state == "done" || state == "cancelled") ? 0 : 1;
    }
  }
}
