#include "common/math_util.h"

#include <algorithm>
#include <cmath>

namespace slicetuner {

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

double SafeLog(double p) { return std::log(std::max(p, 1e-12)); }

double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) return -HUGE_VAL;
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double StandardError(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  return SampleStdDev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double Max(const std::vector<double>& xs) {
  return *std::max_element(xs.begin(), xs.end());
}

double Min(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

double Sum(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double RSquared(const std::vector<double>& observed,
                const std::vector<double>& predicted) {
  if (observed.size() != predicted.size() || observed.empty()) return 0.0;
  const double mu = Mean(observed);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - mu) * (observed[i] - mu);
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

bool AlmostEqual(double a, double b, double tol) {
  const double diff = std::fabs(a - b);
  if (diff <= tol) return true;
  return diff <= tol * std::max(std::fabs(a), std::fabs(b));
}

}  // namespace slicetuner
