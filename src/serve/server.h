// TuningServer: the long-running service wrapping the whole stack. A
// poll-loop acceptor thread owns the TCP side (127.0.0.1 only, line-delimited
// JSON, src/serve/protocol.h); a dispatcher thread drains the admission
// queue in micro-batches and fans each batch out through one
// engine::ExperimentRunner::RunAll over the shared thread pool. Progress
// frames appended by running sessions are flushed to `stream` subscribers on
// every poll tick, so clients watch allocations converge live.
//
// Graceful shutdown (shutdown request or RequestShutdown()): the acceptor
// stops admitting, the admission queue unblocks the dispatcher, the batch in
// flight runs to completion (queued-but-unstarted sessions resolve
// cancelled), streams are closed out with done frames, and Wait() returns.

#ifndef SLICETUNER_SERVE_SERVER_H_
#define SLICETUNER_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "store/store.h"

namespace slicetuner {
namespace serve {

struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// with port()).
  int port = 0;
  /// Concurrent sessions per batched fan-out: 0 = one per pool lane.
  int max_concurrent_sessions = 0;
  AdmissionOptions admission;
  /// Stream-flush cadence of the poll loop.
  int poll_interval_ms = 20;
  int max_connections = 64;
  /// Longest accepted request line; a connection whose (complete or
  /// still-unterminated) line exceeds this is answered with InvalidArgument
  /// and dropped, bounding per-connection buffering.
  size_t max_request_bytes = 1 << 20;
  /// Non-empty: durable-state directory (src/store/). Start() recovers it —
  /// sessions resume warm, with their curve caches installed — and the
  /// server journals session lifecycles, honors the `snapshot`/`restore`
  /// admin verbs, and checkpoints once more on graceful shutdown.
  std::string state_dir;
};

class TuningServer {
 public:
  explicit TuningServer(ServerOptions options = ServerOptions());
  ~TuningServer();

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  /// Binds, listens, and launches the acceptor + dispatcher threads.
  Status Start();

  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Blocks until the server has shut down (via a shutdown request or
  /// RequestShutdown) and both threads have exited.
  void Wait();

  /// Programmatic graceful shutdown; idempotent.
  void RequestShutdown();

  SessionManager& sessions() { return sessions_; }
  const AdmissionController& admission() const { return admission_; }
  /// The durable store backing this server; nullptr without a state dir.
  store::DurableStore* durable_store() { return store_.get(); }
  /// What startup recovery did (empty report without a state dir).
  const RestoreReport& restore_report() const { return restore_report_; }

  /// Server-wide counters (the stats response payload).
  json::Value StatsJson() const;

 private:
  struct Connection {
    int fd = -1;
    std::string input;          // bytes read, not yet framed
    std::string output;         // bytes queued, not yet written
    TuningSession* streaming = nullptr;  // non-null: subscribed session
    size_t frame_cursor = 0;
    bool closed = false;
  };

  void PollLoop();
  void DispatchLoop();
  Status OpenStateDir();
  void WriteFinalSnapshot();
  void RejectOversizedInput(Connection* conn);
  void HandleLine(Connection* conn, const std::string& line);
  json::Value HandleRequest(Connection* conn, const Request& request);
  void FlushStreams();
  void SendJson(Connection* conn, const json::Value& value);
  void FlushOutput(Connection* conn);

  ServerOptions options_;
  SessionManager sessions_;
  AdmissionController admission_;
  std::unique_ptr<store::DurableStore> store_;
  RestoreReport restore_report_;
  std::atomic<bool> final_snapshot_written_{false};

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> started_{false};
  std::atomic<size_t> requests_handled_{0};
  std::atomic<size_t> frames_streamed_{0};
  // Shed rejections that carried a retry_after_ms hint (stats response).
  std::atomic<size_t> retry_after_sent_{0};
  std::thread poll_thread_;
  std::thread dispatch_thread_;
  std::vector<Connection> connections_;  // poll thread only
};

}  // namespace serve
}  // namespace slicetuner

#endif  // SLICETUNER_SERVE_SERVER_H_
