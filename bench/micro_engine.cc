// Engine microbenchmark: serial vs. parallel learning-curve estimation.
//
// Measures wall time of the exhaustive 4-slice x (K=5 subset points x 4
// slices = 20 training cells) Monte-Carlo grid on the Census-like preset,
// first with the serial fallback (--threads=1 semantics) and then with the
// engine fanning the grid out across every core. Verifies that both paths
// produce identical fitted parameters (the engine's determinism contract)
// and writes a BENCH_engine.json summary under results/.
//
// Usage: bench_micro_engine [--threads=N] [--repeats=R]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/learning_curve.h"
#include "data/synthetic.h"

namespace slicetuner {
namespace {

struct TimedRun {
  double best_seconds = 1e300;
  double total_seconds = 0.0;
  CurveEstimationResult result;
};

TimedRun TimeEstimation(const DatasetPreset& preset, const Dataset& train,
                        const Dataset& validation, int num_threads,
                        int repeats) {
  LearningCurveOptions options;
  options.exhaustive = true;  // the 4-slice x 5-point = 20-training grid
  options.num_points = 5;
  options.num_curve_draws = 3;
  options.seed = 17;
  options.num_threads = num_threads;

  TimedRun timed;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch timer;
    auto result = EstimateLearningCurves(train, validation,
                                         preset.num_slices(),
                                         preset.model_spec, preset.trainer,
                                         options);
    const double elapsed = timer.ElapsedSeconds();
    ST_CHECK_OK(result.status());
    timed.best_seconds = std::min(timed.best_seconds, elapsed);
    timed.total_seconds += elapsed;
    timed.result = std::move(*result);
  }
  return timed;
}

}  // namespace
}  // namespace slicetuner

int main(int argc, char** argv) {
  using namespace slicetuner;
  const int threads = bench::ParseThreadsFlag(argc, argv, /*default=*/0);
  const int repeats = std::max(
      1, bench::ParseIntFlag(argc, argv, "--repeats=", /*default=*/3));
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("=== Engine microbenchmark: curve estimation "
              "(4 slices x 5 points x 20 trainings) ===\n");
  std::printf("hardware cores: %u, parallel lanes: %s, repeats: %d\n", cores,
              threads == 0 ? "all" : std::to_string(threads).c_str(),
              repeats);

  const DatasetPreset preset = MakeCensusLike();
  Rng rng(3);
  const Dataset train =
      preset.generator.GenerateDataset(EqualSizes(4, 250), &rng);
  const Dataset validation =
      preset.generator.GenerateDataset(EqualSizes(4, 150), &rng);

  const TimedRun serial =
      TimeEstimation(preset, train, validation, /*num_threads=*/1, repeats);
  const TimedRun parallel =
      TimeEstimation(preset, train, validation, threads, repeats);

  // Determinism contract: identical fitted parameters at any lane count.
  bool identical = true;
  for (size_t s = 0; s < serial.result.slices.size(); ++s) {
    identical = identical &&
                serial.result.slices[s].curve.a ==
                    parallel.result.slices[s].curve.a &&
                serial.result.slices[s].curve.b ==
                    parallel.result.slices[s].curve.b;
  }

  const double speedup = serial.best_seconds / parallel.best_seconds;
  std::printf("serial   : best %.3fs (mean %.3fs over %d runs)\n",
              serial.best_seconds, serial.total_seconds / repeats, repeats);
  std::printf("parallel : best %.3fs (mean %.3fs over %d runs)\n",
              parallel.best_seconds, parallel.total_seconds / repeats,
              repeats);
  std::printf("speedup  : %.2fx, identical parameters: %s\n", speedup,
              identical ? "yes" : "NO (BUG)");

  const std::string json_path = bench::ResultsDir() + "/BENCH_engine.json";
  ST_CHECK_OK(bench::WriteBenchJson(
      json_path,
      {{"bench", "\"engine_curve_estimation\""},
       {"grid", "\"4 slices x 5 points (exhaustive, 20 trainings)\""},
       {"hardware_cores", StrFormat("%u", cores)},
       {"threads", StrFormat("%d", threads)},
       {"repeats", StrFormat("%d", repeats)},
       {"serial_best_seconds", FormatDouble(serial.best_seconds, 4)},
       {"parallel_best_seconds", FormatDouble(parallel.best_seconds, 4)},
       {"speedup", FormatDouble(speedup, 3)},
       {"identical_parameters", identical ? "true" : "false"},
       {"model_trainings", StrFormat("%d", serial.result.model_trainings)}}));
  std::printf("Summary written to %s\n", json_path.c_str());
  return identical ? 0 : 1;
}
