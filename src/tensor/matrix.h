// Dense row-major double matrix: the numeric substrate under the neural
// network library. Deliberately minimal — no views, no broadcasting beyond
// what the NN layers need — and fully owned storage.

#ifndef SLICETUNER_TENSOR_MATRIX_H_
#define SLICETUNER_TENSOR_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/random.h"

namespace slicetuner {

/// A rows x cols matrix of doubles, stored row-major in one contiguous
/// buffer. A 1 x n or n x 1 matrix doubles as a vector.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix m = {{1, 2}, {3, 4}};
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  /// Sets all entries to `value`.
  void Fill(double value);

  /// Sets all entries to 0.
  void Zero() { Fill(0.0); }

  /// Fills with N(0, stddev^2) entries.
  void FillNormal(Rng* rng, double stddev);

  /// Fills with U(-limit, limit) entries.
  void FillUniform(Rng* rng, double limit);

  /// Xavier/Glorot uniform initialization for a fan_in x fan_out weight.
  void FillGlorot(Rng* rng);

  /// He/Kaiming normal initialization (for ReLU layers).
  void FillHe(Rng* rng);

  /// Returns the transposed matrix.
  Matrix Transposed() const;

  /// Copies row r into a 1 x cols matrix.
  Matrix RowCopy(size_t r) const;

  /// Extracts the rows listed in `indices` (in order) into a new matrix.
  Matrix GatherRows(const std::vector<size_t>& indices) const;

  /// GatherRows into a caller-owned matrix, reusing its storage when the
  /// shape already matches. The allocation-free path of the batched trainer.
  void GatherRowsInto(const std::vector<size_t>& indices, Matrix* out) const;

  /// Copies the contiguous row range [begin, end) into `out` (resized only
  /// on shape mismatch). One memcpy-shaped pass: how the trainer slices
  /// minibatches out of an epoch-permuted feature matrix.
  void CopyRowRangeInto(size_t begin, size_t end, Matrix* out) const;

  /// Frobenius norm.
  double Norm() const;

  /// Sum of all entries.
  double Sum() const;

  /// Index of the maximum entry in row r.
  size_t ArgMaxRow(size_t r) const;

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Human-readable rendering, for debugging and test failure messages.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

bool operator==(const Matrix& a, const Matrix& b);

}  // namespace slicetuner

#endif  // SLICETUNER_TENSOR_MATRIX_H_
