#include "nn/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/result.h"
#include "common/string_util.h"

namespace slicetuner {

Result<TrainLog> Train(Model* model, const Matrix& features,
                       const std::vector<int>& labels,
                       const TrainerOptions& options) {
  if (features.rows() != labels.size()) {
    return Status::InvalidArgument(
        StrFormat("features rows (%zu) != labels size (%zu)", features.rows(),
                  labels.size()));
  }
  if (features.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (options.epochs <= 0) {
    return Status::InvalidArgument("epochs must be positive");
  }

  Rng rng(options.seed);
  std::unique_ptr<Optimizer> optimizer = MakeOptimizer(
      options.optimizer, options.learning_rate, options.weight_decay);
  const std::vector<Matrix*> params = model->Params();
  const std::vector<Matrix*> grads = model->Grads();

  model->SetTraining(true);
  const size_t n = features.rows();
  double lr = options.learning_rate;
  TrainLog log;
  log.epoch_losses.reserve(static_cast<size_t>(options.epochs));

  // Matrix-at-a-time batching: the whole epoch is gathered once into a
  // permuted feature matrix, and every minibatch is then a contiguous row
  // range sliced out with one block copy. All buffers persist across
  // batches and epochs, so the steady state allocates nothing. The batch
  // composition (one Permutation draw per epoch, rows [start, end) of it)
  // is exactly that of the per-batch-gather trainer, so training
  // trajectories are bit-identical to it.
  Matrix epoch_x;
  std::vector<int> epoch_labels(n);
  Matrix batch_x;   // full-size batches
  Matrix tail_x;    // the (possibly smaller) last batch of an epoch
  std::vector<int> batch_labels;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const std::vector<size_t> perm = rng.Permutation(n);
    features.GatherRowsInto(perm, &epoch_x);
    for (size_t i = 0; i < n; ++i) epoch_labels[i] = labels[perm[i]];
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t end = std::min(n, start + options.batch_size);
      Matrix* bx = (end - start == options.batch_size) ? &batch_x : &tail_x;
      epoch_x.CopyRowRangeInto(start, end, bx);
      batch_labels.assign(
          epoch_labels.begin() + static_cast<ptrdiff_t>(start),
          epoch_labels.begin() + static_cast<ptrdiff_t>(end));
      epoch_loss += model->ForwardBackward(*bx, batch_labels);
      if (options.clip_norm > 0.0) {
        double norm_sq = 0.0;
        for (Matrix* g : grads) {
          const double* p = g->data();
          for (size_t j = 0; j < g->size(); ++j) norm_sq += p[j] * p[j];
        }
        const double norm = std::sqrt(norm_sq);
        if (norm > options.clip_norm) {
          const double scale = options.clip_norm / norm;
          for (Matrix* g : grads) *g *= scale;
        }
      }
      optimizer->Step(params, grads);
      ++batches;
    }
    epoch_loss /= static_cast<double>(batches);
    log.epoch_losses.push_back(epoch_loss);
    log.epochs_run = epoch + 1;
    if (epoch_loss < options.loss_floor) break;
    if (options.lr_decay != 1.0) {
      lr *= options.lr_decay;
      optimizer->set_learning_rate(lr);
    }
  }
  model->SetTraining(false);
  return log;
}

double EvaluateLogLoss(Model* model, const Matrix& features,
                       const std::vector<int>& labels) {
  if (labels.empty()) return 0.0;
  Matrix probs;
  model->Predict(features, &probs);
  return LogLoss(probs, labels);
}

double EvaluateAccuracy(Model* model, const Matrix& features,
                        const std::vector<int>& labels) {
  if (labels.empty()) return 0.0;
  Matrix probs;
  model->Predict(features, &probs);
  return Accuracy(probs, labels);
}

}  // namespace slicetuner
