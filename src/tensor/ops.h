// Free-function kernels on Matrix: matmul, softmax, reductions. These are the
// hot loops of model training; they favor simple cache-friendly forms.

#ifndef SLICETUNER_TENSOR_OPS_H_
#define SLICETUNER_TENSOR_OPS_H_

#include "tensor/matrix.h"

namespace slicetuner {

/// out = a * b. Shapes must agree (a: m x k, b: k x n, out: m x n); `out` is
/// resized as needed. `out` must not alias a or b.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T (a: m x k, b: n x k, out: m x n). Cache-friendly for the
/// backward pass.
void MatMulTransposedB(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b (a: k x m, b: k x n, out: m x n).
void MatMulTransposedA(const Matrix& a, const Matrix& b, Matrix* out);

/// Adds a 1 x n bias row to every row of `m` (in place).
void AddRowBroadcast(Matrix* m, const Matrix& bias);

/// Column-wise sum of `m` into a 1 x cols matrix.
void ColumnSum(const Matrix& m, Matrix* out);

/// Row-wise softmax (in place), numerically stabilized.
void SoftmaxRows(Matrix* m);

/// Element-wise product: out = a ⊙ b (resized to match).
void Hadamard(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a + b (element-wise).
Matrix Add(const Matrix& a, const Matrix& b);

/// out = a - b (element-wise).
Matrix Sub(const Matrix& a, const Matrix& b);

/// out = scalar * a.
Matrix Scale(const Matrix& a, double scalar);

/// Maximum absolute difference between entries of equally-shaped matrices.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace slicetuner

#endif  // SLICETUNER_TENSOR_OPS_H_
