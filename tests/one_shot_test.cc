// Tests for the One-shot algorithm (Section 5.1).

#include <gtest/gtest.h>

#include "core/one_shot.h"
#include "data/synthetic.h"

namespace slicetuner {
namespace {

SliceCurveEstimate MakeCurve(double b, double a) {
  SliceCurveEstimate est;
  est.curve.b = b;
  est.curve.a = a;
  est.reliable = true;
  return est;
}

TEST(PlanWithCurvesTest, SpendsBudgetOnSteepSlice) {
  const std::vector<SliceCurveEstimate> curves = {MakeCurve(5.0, 0.5),
                                                  MakeCurve(3.0, 0.05)};
  const auto plan = PlanOneShotWithCurves(curves, {100, 100}, {1.0, 1.0},
                                          200.0, /*lambda=*/0.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->examples[0], plan->examples[1]);
  long long total = plan->examples[0] + plan->examples[1];
  EXPECT_LE(total, 200);
  EXPECT_GE(total, 199);
}

TEST(PlanWithCurvesTest, FlatCurvesFallBackGracefully) {
  // Two equally flat curves with equal sizes: the plan should be roughly
  // symmetric (no pathological all-in-one-slice behavior).
  const std::vector<SliceCurveEstimate> curves = {MakeCurve(1.0, 0.05),
                                                  MakeCurve(1.0, 0.05)};
  const auto plan = PlanOneShotWithCurves(curves, {100, 100}, {1.0, 1.0},
                                          100.0, 1.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(static_cast<double>(plan->examples[0]),
              static_cast<double>(plan->examples[1]), 10.0);
}

TEST(PlanWithCurvesTest, RespectsCosts) {
  const std::vector<SliceCurveEstimate> curves = {MakeCurve(2.0, 0.3),
                                                  MakeCurve(2.0, 0.3)};
  const auto plan = PlanOneShotWithCurves(curves, {100, 100}, {5.0, 1.0},
                                          100.0, 0.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_LT(plan->examples[0], plan->examples[1]);
  const double spend = 5.0 * static_cast<double>(plan->examples[0]) +
                       static_cast<double>(plan->examples[1]);
  EXPECT_LE(spend, 100.0 + 1e-9);
}

TEST(PlanWithCurvesTest, ErrorsOnInconsistentArity) {
  const std::vector<SliceCurveEstimate> curves = {MakeCurve(2.0, 0.3)};
  EXPECT_FALSE(
      PlanOneShotWithCurves(curves, {100, 100}, {1.0, 1.0}, 100.0, 1.0)
          .ok());
}

TEST(PlanOneShotTest, EndToEndOnCensusPreset) {
  const DatasetPreset preset = MakeCensusLike();
  Rng rng(3);
  const Dataset train = preset.generator.GenerateDataset(
      {150, 150, 150, 150}, &rng);
  const Dataset validation = preset.generator.GenerateDataset(
      {120, 120, 120, 120}, &rng);
  OneShotOptions options;
  options.lambda = 1.0;
  options.curve_options.num_points = 5;
  options.curve_options.num_curve_draws = 2;
  options.curve_options.seed = 9;
  const auto plan =
      PlanOneShot(train, validation, 4, preset.model_spec, preset.trainer,
                  preset.costs, 500.0, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->examples.size(), 4u);
  EXPECT_EQ(plan->model_trainings, 5);
  long long total = 0;
  for (long long d : plan->examples) {
    EXPECT_GE(d, 0);
    total += d;
  }
  EXPECT_LE(total, 500);
  EXPECT_GE(total, 495);  // nearly all the budget is spent (cost = 1)
  EXPECT_EQ(plan->curves.size(), 4u);
}

TEST(PlanOneShotTest, ZeroBudgetPlansNothing) {
  const DatasetPreset preset = MakeCensusLike();
  Rng rng(4);
  const Dataset train = preset.generator.GenerateDataset(
      {100, 100, 100, 100}, &rng);
  const Dataset validation = preset.generator.GenerateDataset(
      {80, 80, 80, 80}, &rng);
  OneShotOptions options;
  options.curve_options.num_points = 4;
  options.curve_options.num_curve_draws = 1;
  const auto plan =
      PlanOneShot(train, validation, 4, preset.model_spec, preset.trainer,
                  preset.costs, 0.0, options);
  ASSERT_TRUE(plan.ok());
  for (long long d : plan->examples) EXPECT_EQ(d, 0);
}

}  // namespace
}  // namespace slicetuner
