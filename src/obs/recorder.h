// Flight recorder: always-on, bounded-memory ring of recent events
// (docs/OBSERVABILITY.md, "Flight recorder"). Every interesting hop in a
// request's life — request received, admission verdict, dispatch, job and
// round boundaries, engine estimate, store append/fsync, done frame —
// drops one fixed-size binary record into a per-thread ring buffer. The
// rings are never flushed and never block: old records are overwritten in
// place, so at any instant the recorder holds the last ~kRingCapacity
// events each active thread produced, and a post-mortem (crash dump or the
// `trace` protocol verb) can reconstruct what the process was doing in the
// moments before "now".
//
// Design constraints, in the same order as metrics.h:
//   1. The write path is lock-free and allocation-free: a thread-local
//      ring pointer, one monotonic cursor bump, and a handful of relaxed
//      atomic stores into the claimed slot. bench/micro_obs.cc gates the
//      per-record cost and the end-to-end serve overhead (<3%) with the
//      recorder enabled.
//   2. Snapshots may be slow. Every slot field is an atomic, and a
//      slot-local sequence word written last (release) and re-checked
//      after the field reads (acquire) detects records that were being
//      overwritten mid-read; such torn slots are skipped, never emitted.
//      The result is merged across rings and sorted by timestamp.
//   3. Ring registration is rare and lock-free (a fixed array of atomic
//      pointers), so DumpTo(fd) — the crash-handler path — can walk every
//      ring using only async-signal-safe operations: no locks, no
//      allocation, no stdio.
//
// Each thread that records gets its own ring (single writer; readers are
// wait-free observers). Rings live until process exit even if their thread
// exits first — a flight recorder wants exactly that: the last events of a
// dead thread are evidence, not garbage.

#ifndef SLICETUNER_OBS_RECORDER_H_
#define SLICETUNER_OBS_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace slicetuner {
namespace obs {

/// What happened. Names (EventKindName) are the stable external contract:
/// they appear in `trace` verb payloads and crash dumps.
enum class EventKind : uint32_t {
  kRequestRecv = 1,   // request line parsed; arg = request type
  kRequestDone = 2,   // response written; arg = 1 ok / 0 error
  kAdmit = 3,         // admission accepted; arg = queue depth after
  kShed = 4,          // admission shed; arg = retry_after_ms
  kDispatch = 5,      // dispatcher drained the job to a runner; arg = shard
  kJobStart = 6,      // RunJob entered; arg = queue wait ns
  kJobDone = 7,       // job reached a terminal phase; arg = run ns
  kRoundStart = 8,    // tuning round opened; arg = round index
  kEstimate = 9,      // engine estimate stage done; arg = ns
  kPlan = 10,         // budget plan stage done; arg = ns
  kAcquire = 11,      // slice acquire stage done; arg = ns
  kStoreAppend = 12,  // journal record appended; arg = records unsynced
  kStoreSync = 13,    // group-commit fsync done; arg = records synced
  kFrameDone = 14,    // done frame emitted to a stream; arg = 0
  kCancel = 15,       // cancel resolved against the session; arg = 0
};

const char* EventKindName(EventKind kind);

/// One merged, validated record (Recorder::Snapshot output).
struct RecordedEvent {
  uint64_t ts_ns = 0;
  uint64_t trace_id = 0;
  uint32_t thread = 0;
  EventKind kind = EventKind::kRequestRecv;
  int64_t arg = 0;
  std::string session;
};

class Recorder {
 public:
  /// Records kept per thread ring. Rings overwrite in place past this.
  static constexpr size_t kRingCapacity = 1024;
  /// Threads beyond this stop recording (never block, never corrupt).
  static constexpr size_t kMaxRings = 64;
  static constexpr size_t kMaxSessionLen = 23;

  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Process-wide instance every instrumented path records into. Leaked,
  /// like MetricsRegistry::Global().
  static Recorder& Global();

  /// Record-path switch, independent of MetricsRegistry::SetEnabled: the
  /// recorder is meant to stay on even when metrics are off ("always-on"),
  /// so benches can measure each subsystem's cost separately.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool Enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one event to the calling thread's ring. `session` may be
  /// nullptr (recorded as ""); longer than kMaxSessionLen truncates.
  void Record(EventKind kind, uint64_t trace_id, const char* session,
              int64_t arg = 0);

  /// Same, taking trace id and session from the calling thread's
  /// trace::CurrentContext() — the common form inside a request scope.
  void RecordHere(EventKind kind, int64_t arg = 0);

  /// Merged view: every valid record across all rings, sorted by ts_ns
  /// (ties broken by thread). Filters: empty session / zero trace pass
  /// everything; `limit` keeps the most recent records (0 = no limit).
  std::vector<RecordedEvent> Snapshot(const std::string& session_filter = "",
                                      uint64_t trace_filter = 0,
                                      size_t limit = 0) const;

  /// {"events":[{"ts_ns":N,"thread":T,"kind":"job_start","trace_id":"hex",
  ///  "session":"s1","arg":N},...],"truncated":bool} — the `trace` verb
  /// payload (docs/PROTOCOL.md).
  json::Value SnapshotJson(const std::string& session_filter = "",
                           uint64_t trace_filter = 0,
                           size_t limit = 0) const;

  /// Async-signal-safe raw dump: writes one text line per record straight
  /// to `fd` using only write(2) and stack buffers — no locks, no
  /// allocation, no stdio, no sorting (rings are dumped in registration
  /// order; consumers sort on ts_ns). Line format:
  ///   ts_ns thread kind_name trace_id_hex session arg
  /// Returns the number of records written.
  size_t DumpTo(int fd) const;

  /// Zeroes every ring (registrations survive). Tests and benches only.
  void Reset();

  /// Rings registered so far (threads that have recorded at least once).
  size_t RingCount() const {
    const size_t n = ring_count_.load(std::memory_order_acquire);
    return n < kMaxRings ? n : kMaxRings;
  }

 private:
  // One slot = one event, every field individually atomic so snapshots
  // taken mid-write are data-race-free (TSan-clean). `seq` is the 1-based
  // per-ring record number, stored last with release order; a reader that
  // sees the same seq before and after reading the payload fields saw a
  // complete record. 8 x 8 bytes = one cache line.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> meta{0};  // kind << 32 | thread index
    std::atomic<int64_t> arg{0};
    std::atomic<uint64_t> sess[3];  // session chars, NUL-padded, packed LE
  };

  struct Ring {
    explicit Ring(uint32_t thread_index) : thread(thread_index) {}
    const uint32_t thread;
    std::atomic<uint64_t> cursor{0};  // records ever written
    Slot slots[kRingCapacity];
  };

  Ring* ThisThreadRing();
  static bool ReadSlot(const Ring& ring, const Slot& slot,
                       RecordedEvent* out);

  std::atomic<bool> enabled_{true};
  std::atomic<size_t> ring_count_{0};
  // Process-unique identity for the thread-local ring cache (assigned on
  // first use): a recorder constructed where a destroyed one lived must
  // not inherit its cached rings.
  std::atomic<uint64_t> owner_id_{0};
  std::atomic<Ring*> rings_[kMaxRings] = {};
};

}  // namespace obs
}  // namespace slicetuner

#endif  // SLICETUNER_OBS_RECORDER_H_
