#include "curvefit/power_law.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace slicetuner {

double PowerLawCurve::Eval(double x) const {
  x = std::max(x, 1.0);
  return b * std::pow(x, -a);
}

double PowerLawCurve::Derivative(double x) const {
  x = std::max(x, 1.0);
  return -a * b * std::pow(x, -a - 1.0);
}

double PowerLawCurve::InverseEval(double loss) const {
  if (loss <= 0.0 || a <= 0.0) return 1e18;
  return std::pow(b / loss, 1.0 / a);
}

std::string PowerLawCurve::ToString() const {
  return StrFormat("y = %.3fx^-%.3f", b, a);
}

}  // namespace slicetuner
