// Table 9 (Appendix B): the over-parameterized "ResNet-18" comparison.
// We swap the basic MLP for a residual MLP (two residual blocks) on the
// Fashion-like dataset. Expected shape: losses are *higher* than with the
// basic model (the architecture is overly complex for the modest dataset,
// as the paper observes), and Moderate still beats Uniform / Water filling.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace slicetuner;
  std::printf("=== Table 9: residual model (ResNet-18 stand-in) on "
              "Fashion-like ===\n");

  ExperimentConfig config;
  config.preset = MakeFashionLike();
  // Appendix B: an over-complex architecture relative to the data.
  config.preset.model_spec.hidden = {32};
  config.preset.model_spec.residual_blocks = 2;
  config.preset.model_spec.residual_hidden = 32;
  config.initial_sizes = EqualSizes(10, 400);
  config.budget = 3000.0;
  config.val_per_slice = 200;
  config.lambda = 1.0;
  config.trials = 3;
  config.seed = 81;
  config.curve_options = bench::BenchCurveOptions(19);
  config.min_slice_size = 400;

  CsvWriter csv;
  ST_CHECK_OK(csv.Open(bench::ResultsDir() + "/table9_resnet.csv"));
  ST_CHECK_OK(
      csv.WriteRow({"method", "loss", "loss_se", "avg_eer", "max_eer"}));

  TablePrinter table({"Method", "Loss", "Avg. / Max. EER"});
  for (Method method : {Method::kOriginal, Method::kUniform,
                        Method::kWaterFilling, Method::kModerate}) {
    const auto outcome = RunMethod(config, method);
    ST_CHECK_OK(outcome.status());
    table.AddRow({MethodName(method), bench::LossCell(*outcome),
                  bench::EerCell(*outcome)});
    ST_CHECK_OK(csv.WriteRow({MethodName(method),
                              FormatDouble(outcome->loss_mean, 4),
                              FormatDouble(outcome->loss_se, 4),
                              FormatDouble(outcome->avg_eer_mean, 4),
                              FormatDouble(outcome->max_eer_mean, 4)}));
  }
  std::printf("\nTable 9 (init 400, B = 3000, residual model)\n");
  table.Print(std::cout);
  ST_CHECK_OK(csv.Close());
  std::printf("Series written to results/table9_resnet.csv\n");
  return 0;
}
