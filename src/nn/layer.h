// Layer interface for the mini neural-network library. Layers own their
// parameters and gradients; the optimizer mutates them through Params() /
// Grads(). Forward/Backward operate on mini-batches (rows = examples).

#ifndef SLICETUNER_NN_LAYER_H_
#define SLICETUNER_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "tensor/matrix.h"

namespace slicetuner {

/// Abstract trainable layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for input `x` (batch x in_dim), storing any
  /// state needed by Backward.
  virtual void Forward(const Matrix& x, Matrix* y) = 0;

  /// Given dL/dy, accumulates parameter gradients and computes dL/dx.
  /// Must be called after Forward on the same batch.
  virtual void Backward(const Matrix& grad_y, Matrix* grad_x) = 0;

  /// Trainable parameters (possibly empty for stateless layers).
  virtual std::vector<Matrix*> Params() { return {}; }

  /// Gradients corresponding 1:1 to Params().
  virtual std::vector<Matrix*> Grads() { return {}; }

  /// Re-draws the initial parameters (no-op for stateless layers).
  virtual void ResetParameters(Rng* /*rng*/) {}

  /// Layer name for debugging ("Dense(64->10)").
  virtual std::string name() const = 0;

  /// Deep copy, including current parameter values.
  virtual std::unique_ptr<Layer> Clone() const = 0;
};

}  // namespace slicetuner

#endif  // SLICETUNER_NN_LAYER_H_
