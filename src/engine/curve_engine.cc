#include "engine/curve_engine.h"

#include <algorithm>
#include <cstring>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "curvefit/fitter.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace slicetuner {
namespace engine {

namespace {

// Process-wide mirrors of the per-engine CurveEngineStats, so the curve
// cache's behavior is visible through the `metrics` verb without walking
// sessions (docs/OBSERVABILITY.md, "Engine").
struct EngineMetrics {
  obs::Counter* estimate_calls =
      obs::MetricsRegistry::Global().counter("engine_estimate_calls_total");
  obs::Counter* served_from_cache = obs::MetricsRegistry::Global().counter(
      "engine_cache_served_total");
  obs::Counter* partial_refits = obs::MetricsRegistry::Global().counter(
      "engine_cache_partial_refits_total");
  obs::Counter* full_runs =
      obs::MetricsRegistry::Global().counter("engine_cache_full_runs_total");
  obs::Counter* slices_refit =
      obs::MetricsRegistry::Global().counter("engine_slices_refit_total");
  obs::Counter* slices_reused =
      obs::MetricsRegistry::Global().counter("engine_slices_reused_total");
  obs::Counter* trainings_saved = obs::MetricsRegistry::Global().counter(
      "engine_trainings_saved_total");
  obs::Gauge* cache_hit_ratio =
      obs::MetricsRegistry::Global().gauge("engine_cache_hit_ratio");
  obs::Histogram* estimate_ns =
      obs::MetricsRegistry::Global().histogram("engine_estimate_ns");

  // Cache hit ratio = slices served warm / slices considered, across the
  // process lifetime.
  void UpdateHitRatio() {
    const double reused = static_cast<double>(slices_reused->Value());
    const double refit = static_cast<double>(slices_refit->Value());
    if (reused + refit > 0.0) {
      cache_hit_ratio->Set(reused / (reused + refit));
    }
  }
};

EngineMetrics& Metrics() {
  static EngineMetrics& metrics = *new EngineMetrics();
  return metrics;
}

// RAII flight-recorder event: one `estimate` record per Estimate() call,
// arg = elapsed ns, stamped with the calling thread's trace context (the
// dispatcher installs the job's trace before entering the engine).
struct RecordEstimateEvent {
  uint64_t start = obs::MonotonicNanos();
  ~RecordEstimateEvent() {
    obs::Recorder::Global().RecordHere(
        obs::EventKind::kEstimate,
        static_cast<int64_t>(obs::MonotonicNanos() - start));
  }
};

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline void Mix(uint64_t* h, uint64_t v) {
  *h ^= v;
  *h *= kFnvPrime;
}

inline void MixDouble(uint64_t* h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  Mix(h, bits);
}

void MixRow(uint64_t* h, const Dataset& data, size_t row) {
  Mix(h, static_cast<uint64_t>(data.label(row)));
  const double* f = data.features(row);
  for (size_t d = 0; d < data.dim(); ++d) MixDouble(h, f[d]);
}

// Trainings an uncached estimation of this call would have performed.
long long UncachedTrainings(int num_slices,
                            const LearningCurveOptions& options) {
  const long long k = std::max(options.num_points, 2);
  return options.exhaustive ? k * num_slices : k;
}

// uint64 values (hashes, fingerprints) cross the JSON boundary as 16-digit
// hex strings: readable in snapshot files and immune to int64 sign games.
std::string HexU64(uint64_t value) {
  return StrFormat("%016llx", static_cast<unsigned long long>(value));
}

Result<uint64_t> ParseHexU64(const std::string& text) {
  if (text.size() != 16) {
    return Status::InvalidArgument("expected 16 hex digits, got '" + text +
                                   "'");
  }
  uint64_t value = 0;
  for (const char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::InvalidArgument("expected 16 hex digits, got '" + text +
                                     "'");
    }
    value = (value << 4) | digit;
  }
  return value;
}

}  // namespace

uint64_t HashSliceContent(const Dataset& data, int slice) {
  uint64_t h = kFnvOffset;
  Mix(&h, static_cast<uint64_t>(slice));
  for (size_t i = 0; i < data.size(); ++i) {
    if (data.slice(i) != slice) continue;
    MixRow(&h, data, i);
  }
  return h;
}

std::vector<uint64_t> HashAllSliceContents(const Dataset& data,
                                           int num_slices) {
  // One pass with a running accumulator per slice; agrees with
  // HashSliceContent(data, s) for every s because rows are visited in the
  // same (dataset) order either way.
  std::vector<uint64_t> hashes(static_cast<size_t>(num_slices), kFnvOffset);
  for (int s = 0; s < num_slices; ++s) {
    Mix(&hashes[static_cast<size_t>(s)], static_cast<uint64_t>(s));
  }
  for (size_t i = 0; i < data.size(); ++i) {
    const int s = data.slice(i);
    if (s < 0 || s >= num_slices) continue;
    MixRow(&hashes[static_cast<size_t>(s)], data, i);
  }
  return hashes;
}

uint64_t HashDatasetContent(const Dataset& data) {
  uint64_t h = kFnvOffset;
  Mix(&h, data.size());
  Mix(&h, data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    Mix(&h, static_cast<uint64_t>(data.slice(i)));
    MixRow(&h, data, i);
  }
  return h;
}

CurveEstimationEngine::CurveEstimationEngine(CurveEngineOptions options)
    : options_(options) {}

uint64_t CurveEstimationEngine::ConfigFingerprint(
    const Dataset& validation, int num_slices, const ModelSpec& model_spec,
    const TrainerOptions& trainer, const LearningCurveOptions& options) const {
  uint64_t h = kFnvOffset;
  Mix(&h, static_cast<uint64_t>(num_slices));
  Mix(&h, static_cast<uint64_t>(options.num_points));
  MixDouble(&h, options.min_fraction);
  Mix(&h, options.min_subset);
  Mix(&h, static_cast<uint64_t>(options.num_curve_draws));
  Mix(&h, options.exhaustive ? 1 : 0);
  Mix(&h, model_spec.input_dim);
  Mix(&h, model_spec.num_classes);
  for (size_t w : model_spec.hidden) Mix(&h, w);
  Mix(&h, model_spec.residual_blocks);
  Mix(&h, model_spec.residual_hidden);
  MixDouble(&h, model_spec.dropout);
  Mix(&h, static_cast<uint64_t>(trainer.epochs));
  Mix(&h, trainer.batch_size);
  MixDouble(&h, trainer.learning_rate);
  MixDouble(&h, trainer.weight_decay);
  Mix(&h, static_cast<uint64_t>(trainer.optimizer));
  MixDouble(&h, trainer.loss_floor);
  MixDouble(&h, trainer.lr_decay);
  MixDouble(&h, trainer.clip_norm);
  Mix(&h, HashDatasetContent(validation));
  return h;
}

void CurveEstimationEngine::Invalidate(int slice) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t idx = static_cast<size_t>(slice);
  if (idx < cache_.size()) cache_[idx].valid = false;
}

void CurveEstimationEngine::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : cache_) e.valid = false;
}

Result<CurveEstimationResult> CurveEstimationEngine::Estimate(
    const Dataset& train, const Dataset& validation, int num_slices,
    const ModelSpec& model_spec, const TrainerOptions& trainer,
    const LearningCurveOptions& options) {
  obs::ScopedTimer estimate_timer(Metrics().estimate_ns);
  RecordEstimateEvent record_event;
  LearningCurveOptions effective = options;
  if (options_.num_threads != 0) effective.num_threads = options_.num_threads;

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.estimate_calls;
  Metrics().estimate_calls->Add();

  // A caller-supplied slice filter is honored as-is, bypassing the cache:
  // a partial result must neither be served from nor written into it.
  if (!options_.enable_cache || num_slices <= 0 ||
      !options.slices_to_estimate.empty()) {
    ++stats_.full_runs;
    Metrics().full_runs->Add();
    return EstimateLearningCurves(train, validation, num_slices, model_spec,
                                  trainer, effective);
  }

  const size_t n = static_cast<size_t>(num_slices);
  const uint64_t fingerprint =
      ConfigFingerprint(validation, num_slices, model_spec, trainer, options);
  if (!has_fingerprint_ || fingerprint != fingerprint_ ||
      cache_.size() != n) {
    cache_.assign(n, Entry{});
    fingerprint_ = fingerprint;
    has_fingerprint_ = true;
  }

  const std::vector<uint64_t> hashes = HashAllSliceContents(train,
                                                            num_slices);
  std::vector<int> stale;
  for (size_t s = 0; s < n; ++s) {
    if (!cache_[s].valid || cache_[s].content_hash != hashes[s]) {
      stale.push_back(static_cast<int>(s));
    }
  }

  if (stale.empty()) {
    // Nothing changed since the last acquisition round: zero trainings.
    Stopwatch timer;
    CurveEstimationResult cached;
    cached.slices.reserve(n);
    for (const Entry& e : cache_) cached.slices.push_back(e.estimate);
    cached.model_trainings = 0;
    cached.wall_seconds = timer.ElapsedSeconds();
    ++stats_.served_from_cache;
    stats_.slices_reused += n;
    stats_.trainings_saved += UncachedTrainings(num_slices, options);
    Metrics().served_from_cache->Add();
    Metrics().slices_reused->Add(n);
    Metrics().trainings_saved->Add(
        static_cast<uint64_t>(UncachedTrainings(num_slices, options)));
    Metrics().UpdateHitRatio();
    return cached;
  }

  if (effective.exhaustive && stale.size() < n) {
    // Incremental maintenance: re-train only the stale slices.
    LearningCurveOptions partial = effective;
    partial.slices_to_estimate = stale;
    ST_ASSIGN_OR_RETURN(
        CurveEstimationResult fresh,
        EstimateLearningCurves(train, validation, num_slices, model_spec,
                               trainer, partial));
    std::vector<char> is_stale(n, 0);
    for (int s : stale) is_stale[static_cast<size_t>(s)] = 1;
    for (size_t s = 0; s < n; ++s) {
      if (is_stale[s]) {
        // A failed fit (reliable == false) is not cached: the uncached path
        // would retry it with a fresh seed next round and likely recover.
        cache_[s] = Entry{fresh.slices[s].reliable, hashes[s],
                          fresh.slices[s]};
      } else {
        fresh.slices[s] = cache_[s].estimate;
      }
    }
    ++stats_.partial_refits;
    stats_.slices_refit += stale.size();
    stats_.slices_reused += n - stale.size();
    const long long saved =
        UncachedTrainings(num_slices, options) - fresh.model_trainings;
    stats_.trainings_saved += saved;
    Metrics().partial_refits->Add();
    Metrics().slices_refit->Add(stale.size());
    Metrics().slices_reused->Add(n - stale.size());
    if (saved > 0) {
      Metrics().trainings_saved->Add(static_cast<uint64_t>(saved));
    }
    Metrics().UpdateHitRatio();
    return fresh;
  }

  // Full re-estimation; every slice's curve refreshes.
  ST_ASSIGN_OR_RETURN(
      CurveEstimationResult fresh,
      EstimateLearningCurves(train, validation, num_slices, model_spec,
                             trainer, effective));
  for (size_t s = 0; s < n; ++s) {
    // Unreliable (failed-fit) curves stay uncached so the next call retries
    // them with that round's fresh seed.
    cache_[s] = Entry{fresh.slices[s].reliable, hashes[s], fresh.slices[s]};
  }
  ++stats_.full_runs;
  stats_.slices_refit += n;
  Metrics().full_runs->Add();
  Metrics().slices_refit->Add(n);
  Metrics().UpdateHitRatio();
  return fresh;
}

json::Value CurveEstimationEngine::SerializeState() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value out = json::Value::Object();
  out.Set("num_slices", cache_.size());
  if (has_fingerprint_) out.Set("fingerprint", HexU64(fingerprint_));
  json::Value entries = json::Value::Array();
  for (size_t s = 0; s < cache_.size(); ++s) {
    const Entry& e = cache_[s];
    if (!e.valid) continue;
    json::Value entry = json::Value::Object();
    entry.Set("slice", s);
    entry.Set("hash", HexU64(e.content_hash));
    entry.Set("curve", PowerLawCurveToJson(e.estimate.curve));
    entry.Set("points", CurvePointsToJson(e.estimate.points));
    entry.Set("reliable", e.estimate.reliable);
    entries.Append(std::move(entry));
  }
  out.Set("entries", std::move(entries));
  return out;
}

Result<size_t> CurveEstimationEngine::RestoreState(
    const json::Value& state, const std::vector<uint64_t>& expected_hashes) {
  if (!state.is_object()) {
    return Status::InvalidArgument("curve cache state must be an object");
  }
  const json::Value* entries = state.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Status::InvalidArgument("curve cache state has no entries array");
  }

  std::lock_guard<std::mutex> lock(mu_);
  cache_.assign(expected_hashes.size(), Entry{});
  has_fingerprint_ = false;
  if (const json::Value* fp = state.Find("fingerprint")) {
    ST_ASSIGN_OR_RETURN(fingerprint_, ParseHexU64(fp->string_value()));
    has_fingerprint_ = true;
  }

  size_t installed = 0;
  for (const json::Value& entry : entries->items()) {
    const long long slice = entry.GetInt("slice", -1);
    if (slice < 0 ||
        static_cast<size_t>(slice) >= expected_hashes.size()) {
      continue;  // slice count changed since the snapshot; skip
    }
    ST_ASSIGN_OR_RETURN(const uint64_t hash,
                        ParseHexU64(entry.GetString("hash")));
    // The self-validation at the heart of warm restarts: an entry is only
    // trusted when it matches the data the caller reconstructed. Stale
    // entries (rows acquired after the snapshot) just stay cold.
    if (hash != expected_hashes[static_cast<size_t>(slice)]) continue;
    const json::Value* curve = entry.Find("curve");
    const json::Value* points = entry.Find("points");
    if (curve == nullptr || points == nullptr) {
      return Status::InvalidArgument(
          "curve cache entry missing curve/points");
    }
    Entry restored;
    restored.valid = true;
    restored.content_hash = hash;
    ST_ASSIGN_OR_RETURN(restored.estimate.curve,
                        PowerLawCurveFromJson(*curve));
    ST_ASSIGN_OR_RETURN(restored.estimate.points,
                        CurvePointsFromJson(*points));
    restored.estimate.reliable = entry.GetBool("reliable", true);
    cache_[static_cast<size_t>(slice)] = std::move(restored);
    ++installed;
  }
  return installed;
}

}  // namespace engine
}  // namespace slicetuner
