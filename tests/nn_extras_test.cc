// Tests for the NN extensions: dropout (train/eval modes, inverted
// scaling), learning-rate decay schedules, and gradient clipping.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/dropout.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace slicetuner {
namespace {

TEST(DropoutTest, EvalModeIsIdentity) {
  DropoutLayer dropout(0.5);
  dropout.set_training(false);
  Matrix x(4, 8, 1.0);
  Matrix y;
  dropout.Forward(x, &y);
  EXPECT_LT(MaxAbsDiff(x, y), 1e-12);
}

TEST(DropoutTest, TrainingModeZeroesAboutRateFraction) {
  DropoutLayer dropout(0.3, 11);
  dropout.set_training(true);
  Matrix x(100, 100, 1.0);
  Matrix y;
  dropout.Forward(x, &y);
  size_t zeros = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.size()),
              0.3, 0.02);
}

TEST(DropoutTest, InvertedScalingPreservesExpectation) {
  DropoutLayer dropout(0.4, 13);
  dropout.set_training(true);
  Matrix x(200, 200, 1.0);
  Matrix y;
  dropout.Forward(x, &y);
  // E[y] = E[x] with inverted dropout.
  EXPECT_NEAR(y.Sum() / static_cast<double>(y.size()), 1.0, 0.02);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  DropoutLayer dropout(0.5, 17);
  dropout.set_training(true);
  Matrix x(10, 10, 1.0);
  Matrix y;
  dropout.Forward(x, &y);
  Matrix grad_y(10, 10, 1.0);
  Matrix grad_x;
  dropout.Backward(grad_y, &grad_x);
  // Gradient must be zero exactly where the output was zeroed, and scaled
  // identically elsewhere.
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(grad_x.data()[i], y.data()[i]);
  }
}

TEST(DropoutTest, ZeroRateIsIdentityEvenWhenTraining) {
  DropoutLayer dropout(0.0);
  dropout.set_training(true);
  Matrix x(5, 5, 2.0);
  Matrix y;
  dropout.Forward(x, &y);
  EXPECT_LT(MaxAbsDiff(x, y), 1e-12);
}

TEST(DropoutTest, ModelSetTrainingTogglesDropoutLayers) {
  Rng rng(19);
  ModelSpec spec{8, 2, {16}, 0, 32};
  spec.dropout = 0.5;
  Model model = BuildModel(spec, &rng);
  // In eval mode (default), two identical Predict calls agree exactly.
  Matrix x(20, 8);
  x.FillNormal(&rng, 1.0);
  Matrix p1, p2;
  model.Predict(x, &p1);
  model.Predict(x, &p2);
  EXPECT_LT(MaxAbsDiff(p1, p2), 1e-12);
  // In training mode the dropout mask varies between forward passes.
  model.SetTraining(true);
  Matrix l1, l2;
  model.ForwardLogits(x, &l1);
  model.ForwardLogits(x, &l2);
  EXPECT_GT(MaxAbsDiff(l1, l2), 1e-9);
  model.SetTraining(false);
}

TEST(DropoutTest, TrainerRestoresEvalMode) {
  Rng rng(23);
  ModelSpec spec{4, 2, {8}, 0, 32};
  spec.dropout = 0.3;
  Model model = BuildModel(spec, &rng);
  Matrix x(32, 4);
  x.FillNormal(&rng, 1.0);
  std::vector<int> labels(32);
  for (size_t i = 0; i < 32; ++i) labels[i] = static_cast<int>(i % 2);
  TrainerOptions opts;
  opts.epochs = 3;
  ASSERT_TRUE(Train(&model, x, labels, opts).ok());
  // After Train, dropout must be off: predictions deterministic.
  Matrix p1, p2;
  model.Predict(x, &p1);
  model.Predict(x, &p2);
  EXPECT_LT(MaxAbsDiff(p1, p2), 1e-12);
}

TEST(LrScheduleTest, SetLearningRateChangesStepSize) {
  Matrix p(1, 1, 0.0);
  Matrix g(1, 1, 1.0);
  Sgd sgd(0.1);
  Matrix gc = g;
  sgd.Step({&p}, {&gc});
  EXPECT_NEAR(p(0, 0), -0.1, 1e-12);
  sgd.set_learning_rate(0.01);
  gc = g;
  sgd.Step({&p}, {&gc});
  EXPECT_NEAR(p(0, 0), -0.11, 1e-12);
}

TEST(LrScheduleTest, DecayReducesLateUpdates) {
  // With aggressive decay, the parameters move much less in later epochs;
  // check training still converges and runs all epochs.
  Rng rng(29);
  Matrix x(100, 2);
  std::vector<int> labels(100);
  for (size_t i = 0; i < 100; ++i) {
    labels[i] = static_cast<int>(i % 2);
    const double c = labels[i] == 0 ? -2.0 : 2.0;
    x(i, 0) = rng.Normal(c, 0.5);
    x(i, 1) = rng.Normal(c, 0.5);
  }
  Model m1 = BuildModel(ModelSpec{2, 2, {8}, 0, 32}, &rng);
  Model m2 = m1;
  TrainerOptions no_decay;
  no_decay.epochs = 15;
  TrainerOptions with_decay = no_decay;
  with_decay.lr_decay = 0.7;
  const auto log1 = Train(&m1, x, labels, no_decay);
  const auto log2 = Train(&m2, x, labels, with_decay);
  ASSERT_TRUE(log1.ok());
  ASSERT_TRUE(log2.ok());
  // Both should learn the separable problem.
  EXPECT_GT(EvaluateAccuracy(&m1, x, labels), 0.9);
  EXPECT_GT(EvaluateAccuracy(&m2, x, labels), 0.9);
}

TEST(ClipTest, GradientsClippedToNorm) {
  // Train one step with a huge learning problem and tiny clip_norm; the
  // parameter movement must be bounded by lr * clip_norm.
  Rng rng(31);
  Model model = BuildModel(ModelSpec{2, 2, {}, 0, 32}, &rng);
  Matrix x = {{100.0, -100.0}, {-100.0, 100.0}};
  std::vector<int> labels = {0, 1};
  // Snapshot initial params.
  std::vector<Matrix> before;
  for (Matrix* p : model.Params()) before.push_back(*p);
  TrainerOptions opts;
  opts.epochs = 1;
  opts.batch_size = 2;
  opts.optimizer = OptimizerKind::kSgd;
  opts.learning_rate = 1.0;
  opts.weight_decay = 0.0;
  opts.clip_norm = 0.01;
  ASSERT_TRUE(Train(&model, x, labels, opts).ok());
  double movement_sq = 0.0;
  const auto params = model.Params();
  for (size_t i = 0; i < params.size(); ++i) {
    for (size_t j = 0; j < params[i]->size(); ++j) {
      const double d = params[i]->data()[j] - before[i].data()[j];
      movement_sq += d * d;
    }
  }
  EXPECT_LE(std::sqrt(movement_sq), 1.0 * 0.01 + 1e-9);
}

TEST(ClipTest, DisabledByDefault) {
  TrainerOptions opts;
  EXPECT_EQ(opts.clip_norm, 0.0);
  EXPECT_EQ(opts.lr_decay, 1.0);
}

}  // namespace
}  // namespace slicetuner
