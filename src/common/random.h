// Seedable random number generation used across the library. Every stochastic
// component takes an explicit Rng (or seed) so experiments are reproducible.

#ifndef SLICETUNER_COMMON_RANDOM_H_
#define SLICETUNER_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slicetuner {

/// xoshiro256** generator: fast, high-quality, and fully deterministic given
/// a 64-bit seed. Satisfies the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  /// Uniform in [0, 1).
  double Uniform();
  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Standard normal via Box-Muller (cached pair).
  double Normal();
  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);
  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);
  /// Exponential with rate lambda > 0.
  double Exponential(double lambda);
  /// Samples an index according to (non-negative) unnormalized weights.
  /// Returns weights.size() - 1 if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; useful for spawning per-thread
  /// or per-task streams from one master seed. Advances this generator.
  Rng Fork();

  /// Derives the seed of child stream `index` without advancing this
  /// generator: ForkSeed(i) is a pure function of (current state, i), so
  /// distinct indices yield statistically independent streams and the same
  /// index always yields the same stream. This is the engine's determinism
  /// primitive: parallel tasks seeded with Fork(task_index) produce
  /// bit-identical results regardless of scheduling or thread count.
  uint64_t ForkSeed(uint64_t index) const;

  /// Rng(ForkSeed(index)): the child generator of stream `index`.
  Rng Fork(uint64_t index) const;

 private:
  uint64_t Next();

  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace slicetuner

#endif  // SLICETUNER_COMMON_RANDOM_H_
