// Small filesystem helpers shared by the benchmark harnesses, the serving
// tools, and the durable-state store (src/store/): recursive directory
// creation, the SLICETUNER_RESULTS_DIR convention for where JSON/CSV
// artifacts land, CRC32 framing checksums, and crash-safe atomic file
// replacement.

#ifndef SLICETUNER_COMMON_FS_UTIL_H_
#define SLICETUNER_COMMON_FS_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace slicetuner {

/// mkdir -p: creates `path` and any missing parents. Returns an error when a
/// component cannot be created or exists as a non-directory.
Status MkDirRecursive(const std::string& path);

/// Output directory for bench/serve CSV and JSON artifacts, created on
/// demand. Defaults to "results" and is overridable via the
/// SLICETUNER_RESULTS_DIR environment variable. A directory that cannot be
/// created aborts the process: CI must never "pass" a run that silently
/// wrote nothing.
std::string ResultsDir();

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path` (truncating), failing on any write error.
Status WriteStringToFile(const std::string& path, const std::string& content);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes at `data`,
/// continuing from `seed` (pass a previous return value to checksum in
/// chunks; 0 starts a fresh checksum). This is the integrity check framing
/// every journal record and snapshot payload in src/store/.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
uint32_t Crc32(const std::string& data, uint32_t seed = 0);

/// Optional seams inside WriteFileAtomic, one per durability boundary.
/// Each hook (when set) runs at its boundary; a non-OK return aborts the
/// write with that status. Production callers pass nothing; the store's
/// FaultInjector (src/store/fault_injector.h) wires these for snapshot
/// crash/EIO tests.
struct AtomicWriteHooks {
  /// Before the tmp file is opened (an injected ENOSPC/EIO: `path` and the
  /// tmp file are untouched).
  std::function<Status()> before_write;
  /// Tmp file written + fsynced, rename not yet issued (`path` still holds
  /// the old content; the tmp file is removed on abort).
  std::function<Status()> pre_rename;
  /// Renamed, parent directory not yet fsynced (`path` already holds the
  /// new content; an abort here models a crash after publication).
  std::function<Status()> post_rename;
};

/// Crash-safe file replacement: writes `content` to `path + ".tmp"`, fsyncs
/// it, renames it over `path`, and fsyncs the parent directory. A reader
/// (or a post-crash recovery) sees either the old file or the complete new
/// one, never a torn mix — the invariant snapshot writes depend on
/// (docs/STATE.md).
Status WriteFileAtomic(const std::string& path, const std::string& content,
                       const AtomicWriteHooks* hooks = nullptr);

/// Flushes a file's contents to stable storage (open + fsync + close).
Status SyncFile(const std::string& path);

/// Deletes a file; missing files are an error (NotFound).
Status RemoveFile(const std::string& path);

/// Names (not paths) of the regular files directly under `dir`, sorted.
Result<std::vector<std::string>> ListDirFiles(const std::string& dir);

}  // namespace slicetuner

#endif  // SLICETUNER_COMMON_FS_UTIL_H_
