// Server smoke test: spawns the real slicetuner_serve binary on an
// ephemeral port and drives it with the real slicetuner_client CLI —
// submit a job, stream its progress (>= 2 frames), cancel a second job,
// check stats, and shut down gracefully, asserting clean exits throughout.
// This is the end-to-end contract of the serving subsystem exercised the
// way an operator would.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/string_util.h"

namespace slicetuner {
namespace {

#ifndef SLICETUNER_SERVE_BIN
#define SLICETUNER_SERVE_BIN "./slicetuner_serve"
#endif
#ifndef SLICETUNER_CLIENT_BIN
#define SLICETUNER_CLIENT_BIN "./slicetuner_client"
#endif
#ifndef SLICETUNER_TOP_BIN
#define SLICETUNER_TOP_BIN "./slicetuner_top"
#endif

struct CommandResult {
  int exit_code = -1;
  std::vector<std::string> lines;
};

CommandResult RunCommand(const std::string& command) {
  CommandResult result;
  std::FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  std::string current;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    current += buf;
    size_t newline;
    while ((newline = current.find('\n')) != std::string::npos) {
      result.lines.push_back(current.substr(0, newline));
      current.erase(0, newline + 1);
    }
  }
  if (!current.empty()) result.lines.push_back(current);
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// The last line of a client invocation that parses as JSON.
json::Value LastJson(const CommandResult& result) {
  for (auto it = result.lines.rbegin(); it != result.lines.rend(); ++it) {
    const Result<json::Value> parsed = json::Value::Parse(*it);
    if (parsed.ok()) return *parsed;
  }
  return json::Value();
}

std::string JoinLines(const CommandResult& result) {
  std::string all;
  for (const std::string& line : result.lines) {
    all += line;
    all += '\n';
  }
  return all;
}

// Launches slicetuner_serve with `extra_flags`, reads the ephemeral port
// off the banner (plus any banner lines before it into *banner), and
// returns the process pipe. Null on failure to launch or bind.
// `env_prefix` ("VAR=value ") is prepended to the shell command — the
// crash/restart test arms SLICETUNER_FAULT_CRASH this way.
std::FILE* LaunchServer(const std::string& extra_flags, int* port,
                        std::string* banner = nullptr,
                        const std::string& env_prefix = "") {
  std::FILE* server = ::popen((env_prefix + SLICETUNER_SERVE_BIN +
                               " --port=0 " + extra_flags + " 2>&1")
                                  .c_str(),
                              "r");
  if (server == nullptr) return nullptr;
  *port = 0;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), server) != nullptr) {
    const std::string line = buf;
    if (banner != nullptr) *banner += line;
    const size_t marker = line.find("listening on 127.0.0.1:");
    if (marker != std::string::npos) {
      *port = std::atoi(line.c_str() + marker +
                        std::strlen("listening on 127.0.0.1:"));
      break;
    }
  }
  return server;
}

TEST(ServeSmokeTest, SubmitStreamCancelShutdownViaRealBinaries) {
  // Launch the server on an ephemeral port and read the port back off its
  // banner line. --metrics-dump exercises the shutdown text exposition.
  const std::string dump_path = testing::TempDir() + "/smoke_metrics.prom";
  (void)RunCommand("rm -f " + dump_path);
  int port = 0;
  std::FILE* server = LaunchServer(
      "--max-queue=8 --max-batch=4 --metrics-dump=" + dump_path, &port);
  ASSERT_NE(server, nullptr);
  ASSERT_GT(port, 0) << "server never printed its listen banner";
  char buf[4096];

  const std::string client =
      std::string(SLICETUNER_CLIENT_BIN) + " --port=" + std::to_string(port);

  // 1. Submit a 2-round tuning job.
  const CommandResult submitted = RunCommand(
      client + " submit --session=s1 --rows=40 --budget=40 --rounds=2");
  EXPECT_EQ(submitted.exit_code, 0) << JoinLines(submitted);
  EXPECT_TRUE(LastJson(submitted).GetBool("ok")) << JoinLines(submitted);

  // 2. Stream it to completion: at least 2 progress frames, then done.
  const CommandResult streamed = RunCommand(client + " stream --session=s1");
  EXPECT_EQ(streamed.exit_code, 0) << JoinLines(streamed);
  int progress_frames = 0;
  std::string final_state;
  for (const std::string& line : streamed.lines) {
    const Result<json::Value> frame = json::Value::Parse(line);
    if (!frame.ok()) continue;
    const std::string kind = frame->GetString("frame");
    if (kind == "progress") ++progress_frames;
    if (kind == "done") final_state = frame->GetString("state");
  }
  EXPECT_GE(progress_frames, 2) << JoinLines(streamed);
  EXPECT_EQ(final_state, "done") << JoinLines(streamed);

  // 3. Submit a long job and cancel it; it must resolve cancelled.
  const CommandResult long_job = RunCommand(
      client + " submit --session=s2 --rows=40 --budget=400 --rounds=400");
  EXPECT_EQ(long_job.exit_code, 0) << JoinLines(long_job);
  const CommandResult cancelled =
      RunCommand(client + " cancel --session=s2");
  EXPECT_EQ(cancelled.exit_code, 0) << JoinLines(cancelled);
  std::string s2_state;
  for (int attempt = 0; attempt < 600; ++attempt) {
    const CommandResult polled = RunCommand(client + " poll --session=s2");
    s2_state = LastJson(polled).GetString("state");
    if (s2_state == "cancelled" || s2_state == "done" ||
        s2_state == "failed") {
      break;
    }
  }
  EXPECT_EQ(s2_state, "cancelled");

  // 4. Stats must acknowledge and report both sessions.
  const CommandResult stats = RunCommand(client + " stats");
  EXPECT_EQ(stats.exit_code, 0) << JoinLines(stats);
  const json::Value stats_json = LastJson(stats);
  EXPECT_TRUE(stats_json.GetBool("ok"));
  const json::Value* sessions = stats_json.Find("sessions");
  ASSERT_NE(sessions, nullptr) << JoinLines(stats);
  EXPECT_EQ(sessions->GetInt("sessions"), 2);

  // 5. The metrics verb against the live daemon: serve stage latencies,
  // queue depth, shed counters, and the engine's cache hit ratio are all
  // live-queryable, the way docs/OBSERVABILITY.md promises an operator.
  const CommandResult metrics = RunCommand(client + " metrics");
  EXPECT_EQ(metrics.exit_code, 0) << JoinLines(metrics);
  const json::Value metrics_json = LastJson(metrics);
  EXPECT_TRUE(metrics_json.GetBool("ok")) << JoinLines(metrics);
  const json::Value* counters = metrics_json.Find("counters");
  ASSERT_NE(counters, nullptr) << JoinLines(metrics);
  EXPECT_GE(counters->GetInt("serve_requests_total"), 4);
  EXPECT_TRUE(counters->Has("serve_shed_queue_full_total"));
  const json::Value* gauges = metrics_json.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_TRUE(gauges->Has("serve_queue_depth"));
  EXPECT_TRUE(gauges->Has("engine_cache_hit_ratio"));
  const json::Value* histograms = metrics_json.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* parse_stage =
      histograms->Find("serve_stage_ns{stage=\"parse\"}");
  ASSERT_NE(parse_stage, nullptr) << JoinLines(metrics);
  EXPECT_GE(parse_stage->GetInt("count"), 1);
  EXPECT_GE(parse_stage->GetDouble("p99"), parse_stage->GetDouble("p50"));

  // 6. Graceful shutdown: the client is acknowledged and the server
  // process exits 0 after writing its stats summary.
  const CommandResult shutdown = RunCommand(client + " shutdown");
  EXPECT_EQ(shutdown.exit_code, 0) << JoinLines(shutdown);

  std::string server_tail;
  while (std::fgets(buf, sizeof(buf), server) != nullptr) {
    server_tail += buf;
  }
  const int server_status = ::pclose(server);
  EXPECT_TRUE(WIFEXITED(server_status));
  EXPECT_EQ(WEXITSTATUS(server_status), 0) << server_tail;
  EXPECT_NE(server_tail.find("shut down cleanly"), std::string::npos)
      << server_tail;

  // 7. The shutdown metrics dump is a Prometheus-style text exposition.
  const CommandResult dumped = RunCommand("cat " + dump_path);
  ASSERT_EQ(dumped.exit_code, 0) << "missing " << dump_path;
  const std::string exposition = JoinLines(dumped);
  EXPECT_NE(exposition.find("serve_requests_total "), std::string::npos)
      << exposition;
  EXPECT_NE(
      exposition.find("serve_stage_ns{stage=\"parse\",quantile=\"0.5\"}"),
      std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find("serve_submit_to_done_ns_count "),
            std::string::npos)
      << exposition;
}

// Warm restart across real daemon processes: run a job under --state-dir,
// checkpoint via the snapshot verb, shut down, start a NEW process on the
// same directory, and resubmit with appended rows. The restarted daemon
// must know the session (jobs_run carries over) and ride the restored
// curve cache: strictly fewer trainings than the cold job, with
// partial_refits advancing — the warm-restart contract of docs/STATE.md
// exercised exactly the way an operator would.
TEST(ServeSmokeTest, WarmRestartAcrossRealProcesses) {
  const std::string state_dir = testing::TempDir() + "/smoke_state";
  (void)RunCommand("rm -rf " + state_dir);

  // --- first daemon: cold job + checkpoint + graceful shutdown ---
  int port = 0;
  std::FILE* server = LaunchServer("--state-dir=" + state_dir, &port);
  ASSERT_NE(server, nullptr);
  ASSERT_GT(port, 0);
  std::string client =
      std::string(SLICETUNER_CLIENT_BIN) + " --port=" + std::to_string(port);

  const CommandResult submitted = RunCommand(
      client + " submit --session=w1 --rows=60 --budget=40 --rounds=1");
  EXPECT_TRUE(LastJson(submitted).GetBool("ok")) << JoinLines(submitted);
  const CommandResult streamed = RunCommand(client + " stream --session=w1");
  EXPECT_EQ(streamed.exit_code, 0) << JoinLines(streamed);

  const json::Value cold_poll =
      LastJson(RunCommand(client + " poll --session=w1"));
  ASSERT_EQ(cold_poll.GetString("state"), "done") << cold_poll.Dump();
  const long long cold_trainings = cold_poll.GetInt("last_job_trainings");
  EXPECT_GT(cold_trainings, 0);

  const CommandResult snapshot = RunCommand(client + " snapshot");
  EXPECT_EQ(snapshot.exit_code, 0) << JoinLines(snapshot);
  EXPECT_TRUE(LastJson(snapshot).GetBool("ok")) << JoinLines(snapshot);

  EXPECT_EQ(RunCommand(client + " shutdown").exit_code, 0);
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), server) != nullptr) {
  }
  const int first_status = ::pclose(server);
  ASSERT_TRUE(WIFEXITED(first_status) && WEXITSTATUS(first_status) == 0);

  // --- second daemon, same state dir: the session must be back, warm ---
  std::string banner;
  server = LaunchServer("--state-dir=" + state_dir, &port, &banner);
  ASSERT_NE(server, nullptr);
  ASSERT_GT(port, 0) << banner;
  client =
      std::string(SLICETUNER_CLIENT_BIN) + " --port=" + std::to_string(port);

  const json::Value restored_poll =
      LastJson(RunCommand(client + " poll --session=w1"));
  ASSERT_TRUE(restored_poll.GetBool("ok")) << restored_poll.Dump();
  EXPECT_EQ(restored_poll.GetString("state"), "done");
  EXPECT_EQ(restored_poll.GetInt("jobs_run"), 1);

  const CommandResult resubmitted = RunCommand(
      client + " submit --session=w1 --append=40 --append-slice=2");
  EXPECT_TRUE(LastJson(resubmitted).GetBool("ok")) << JoinLines(resubmitted);
  EXPECT_EQ(RunCommand(client + " stream --session=w1").exit_code, 0);

  const json::Value warm_poll =
      LastJson(RunCommand(client + " poll --session=w1"));
  ASSERT_EQ(warm_poll.GetString("state"), "done") << warm_poll.Dump();
  EXPECT_EQ(warm_poll.GetInt("jobs_run"), 2);
  EXPECT_LT(warm_poll.GetInt("last_job_trainings"), cold_trainings)
      << warm_poll.Dump();
  const json::Value* cache = warm_poll.Find("curve_cache");
  ASSERT_NE(cache, nullptr) << warm_poll.Dump();
  EXPECT_GE(cache->GetInt("partial_refits"), 1) << warm_poll.Dump();

  // The restore verb is acknowledged and idempotent against live sessions.
  const json::Value restore = LastJson(RunCommand(client + " restore"));
  EXPECT_TRUE(restore.GetBool("ok")) << restore.Dump();

  // With a state dir, the metrics verb reports store durability latencies
  // and the startup replay duration.
  const json::Value durable_metrics = LastJson(RunCommand(client + " metrics"));
  ASSERT_TRUE(durable_metrics.GetBool("ok")) << durable_metrics.Dump();
  const json::Value* histograms = durable_metrics.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* fsync = histograms->Find("store_fsync_ns");
  ASSERT_NE(fsync, nullptr) << durable_metrics.Dump();
  EXPECT_GE(fsync->GetInt("count"), 1);
  EXPECT_TRUE(histograms->Has("store_append_ns"));
  const json::Value* gauges = durable_metrics.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_TRUE(gauges->Has("store_replay_ms"));

  EXPECT_EQ(RunCommand(client + " shutdown").exit_code, 0);
  std::string server_tail;
  while (std::fgets(buf, sizeof(buf), server) != nullptr) {
    server_tail += buf;
  }
  const int second_status = ::pclose(server);
  EXPECT_TRUE(WIFEXITED(second_status));
  EXPECT_EQ(WEXITSTATUS(second_status), 0) << server_tail;
}

// End-to-end observability surfaces against real binaries: a client-minted
// trace id rides submit → done frame → trace verb (events + span tree), the
// metrics verb honors its name-prefix filter, and slicetuner_top --once
// renders one machine-readable dashboard line off the live daemon.
TEST(ServeSmokeTest, TraceVerbPrefixFilterAndTopDashboard) {
  int port = 0;
  std::FILE* server = LaunchServer("", &port);
  ASSERT_NE(server, nullptr);
  ASSERT_GT(port, 0);
  const std::string client =
      std::string(SLICETUNER_CLIENT_BIN) + " --port=" + std::to_string(port);
  const std::string trace_id = "00000000deadbeef";

  // 1. Submit with a client-supplied trace id; the ack echoes it.
  const CommandResult submitted =
      RunCommand(client + " submit --session=t1 --rows=40 --budget=40 "
                          "--rounds=2 --trace-id=" +
                 trace_id);
  EXPECT_EQ(submitted.exit_code, 0) << JoinLines(submitted);
  const json::Value submit_json = LastJson(submitted);
  EXPECT_TRUE(submit_json.GetBool("ok")) << JoinLines(submitted);
  EXPECT_EQ(submit_json.GetString("trace_id"), trace_id)
      << JoinLines(submitted);

  // 2. The done frame closes the trace: same id, plus the job's span tree
  // with one child span per tuning round.
  const CommandResult streamed = RunCommand(client + " stream --session=t1");
  EXPECT_EQ(streamed.exit_code, 0) << JoinLines(streamed);
  bool saw_done = false;
  for (const std::string& line : streamed.lines) {
    const Result<json::Value> frame = json::Value::Parse(line);
    if (!frame.ok() || frame->GetString("frame") != "done") continue;
    saw_done = true;
    EXPECT_EQ(frame->GetString("trace_id"), trace_id) << line;
    const json::Value* tree = frame->Find("trace");
    ASSERT_NE(tree, nullptr) << line;
    EXPECT_EQ(tree->GetString("name"), "job");
    EXPECT_EQ(tree->GetString("trace_id"), trace_id);
    const json::Value* rounds = tree->Find("rounds");
    ASSERT_NE(rounds, nullptr) << line;
    EXPECT_EQ(rounds->size(), 2u) << line;
  }
  EXPECT_TRUE(saw_done) << JoinLines(streamed);

  // 3. The trace verb replays the request's flight-recorder events and the
  // session's span tree. Every event carries the session we filtered on,
  // and the job lifecycle markers are present.
  const CommandResult traced =
      RunCommand(client + " trace --session=t1 --limit=200");
  EXPECT_EQ(traced.exit_code, 0) << JoinLines(traced);
  const json::Value trace_json = LastJson(traced);
  ASSERT_TRUE(trace_json.GetBool("ok")) << JoinLines(traced);
  EXPECT_EQ(trace_json.GetString("state"), "done");
  const json::Value* events = trace_json.Find("events");
  ASSERT_NE(events, nullptr) << JoinLines(traced);
  ASSERT_GT(events->size(), 0u) << JoinLines(traced);
  std::set<std::string> kinds;
  for (const json::Value& event : events->items()) {
    EXPECT_EQ(event.GetString("session"), "t1") << event.Dump();
    EXPECT_GT(event.GetInt("ts_ns"), 0) << event.Dump();
    kinds.insert(event.GetString("kind"));
  }
  for (const char* kind : {"job_start", "round_start", "job_done"}) {
    EXPECT_TRUE(kinds.count(kind)) << "missing " << kind << " in "
                                   << JoinLines(traced);
  }
  const json::Value* verb_tree = trace_json.Find("trace");
  ASSERT_NE(verb_tree, nullptr) << JoinLines(traced);
  EXPECT_EQ(verb_tree->GetString("trace_id"), trace_id);

  // Filtering by trace id instead of session returns only that request's
  // events.
  const json::Value by_id =
      LastJson(RunCommand(client + " trace --trace-id=" + trace_id));
  ASSERT_TRUE(by_id.GetBool("ok")) << by_id.Dump();
  const json::Value* id_events = by_id.Find("events");
  ASSERT_NE(id_events, nullptr);
  ASSERT_GT(id_events->size(), 0u);
  for (const json::Value& event : id_events->items()) {
    EXPECT_EQ(event.GetString("trace_id"), trace_id) << event.Dump();
  }

  // 4. The metrics name-prefix filter: a store_ prefix must drop every
  // serve_ series from all three sections.
  const json::Value filtered =
      LastJson(RunCommand(client + " metrics --prefix=serve_"));
  ASSERT_TRUE(filtered.GetBool("ok")) << filtered.Dump();
  const json::Value* counters = filtered.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->members().size(), 0u);
  for (const auto& member : counters->members()) {
    EXPECT_EQ(member.first.rfind("serve_", 0), 0u) << member.first;
  }
  const json::Value* gauges = filtered.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const auto& member : gauges->members()) {
    EXPECT_EQ(member.first.rfind("serve_", 0), 0u) << member.first;
  }

  // 5. slicetuner_top --once: one machine-readable snapshot line off the
  // same daemon, with per-worker request counts.
  const CommandResult top = RunCommand(std::string(SLICETUNER_TOP_BIN) +
                                       " --port=" + std::to_string(port) +
                                       " --once");
  EXPECT_EQ(top.exit_code, 0) << JoinLines(top);
  const json::Value top_json = LastJson(top);
  EXPECT_GE(top_json.GetInt("requests_total"), 2) << JoinLines(top);
  EXPECT_GE(top_json.GetInt("jobs_done_total"), 1) << JoinLines(top);
  EXPECT_GE(top_json.GetInt("sessions"), 1) << JoinLines(top);
  const json::Value* workers = top_json.Find("worker_requests");
  ASSERT_NE(workers, nullptr) << JoinLines(top);
  EXPECT_GT(workers->size(), 0u) << JoinLines(top);

  EXPECT_EQ(RunCommand(client + " shutdown").exit_code, 0);
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), server) != nullptr) {
  }
  const int server_status = ::pclose(server);
  EXPECT_TRUE(WIFEXITED(server_status));
  EXPECT_EQ(WEXITSTATUS(server_status), 0);
}

// Autonomous maintenance under a real crash: a daemon with snapshot
// cadence every 2 jobs is killed (fault-injected _exit, a faithful
// SIGKILL) in the middle of its second online checkpoint — after the new
// snapshot published, before the covered journals were retired. A fresh
// daemon on the same directory must bring every session back with a
// bounded replay window, keep the retained rollback snapshot, and serve
// new work (docs/STATE.md "Maintenance lifecycle", exercised end to end).
TEST(ServeSmokeTest, MaintenanceCrashMidCheckpointRestartsAndRecovers) {
  const std::string state_dir = testing::TempDir() + "/smoke_maint";
  (void)RunCommand("rm -rf " + state_dir);

  const std::string maint_flags =
      "--state-dir=" + state_dir +
      " --snapshot-every-jobs=2 --maintenance-interval-ms=25"
      " --retain-snapshots=1";
  int port = 0;
  // skip=1: the first checkpoint passes the point; the second dies there.
  std::FILE* server = LaunchServer(
      maint_flags, &port, nullptr,
      "SLICETUNER_FAULT_CRASH=maint.post_snapshot.pre_retire:1 ");
  ASSERT_NE(server, nullptr);
  ASSERT_GT(port, 0);
  std::string client =
      std::string(SLICETUNER_CLIENT_BIN) + " --port=" + std::to_string(port);

  const auto run_job = [&client](const std::string& session) {
    const CommandResult submitted = RunCommand(
        client + " submit --session=" + session +
        " --rows=40 --budget=40 --rounds=1");
    const CommandResult streamed =
        RunCommand(client + " stream --session=" + session);
    (void)submitted;
    (void)streamed;
  };

  // Two finished jobs trigger checkpoint #1; wait until the stats verb
  // reports it so the second pair deterministically triggers checkpoint #2.
  run_job("m1");
  run_job("m2");
  long long checkpoints = 0;
  for (int attempt = 0; attempt < 600 && checkpoints < 1; ++attempt) {
    const json::Value stats = LastJson(RunCommand(client + " stats"));
    const json::Value* store = stats.Find("store");
    if (store == nullptr) continue;
    const json::Value* maintenance = store->Find("maintenance");
    if (maintenance == nullptr) continue;
    checkpoints = maintenance->GetInt("checkpoints");
  }
  ASSERT_GE(checkpoints, 1) << "first online checkpoint never landed";

  // Two more jobs arm checkpoint #2, which dies mid-maintenance. The
  // stream near the crash may fail — only the exit matters here.
  run_job("m3");
  run_job("m4");
  std::string server_tail;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), server) != nullptr) {
    server_tail += buf;
  }
  const int crashed_status = ::pclose(server);
  ASSERT_TRUE(WIFEXITED(crashed_status)) << server_tail;
  EXPECT_EQ(WEXITSTATUS(crashed_status), 42) << server_tail;
  EXPECT_NE(
      server_tail.find("crashing at maint.post_snapshot.pre_retire"),
      std::string::npos)
      << server_tail;

  // The interrupted checkpoint preserved its predecessor as a rollback
  // artifact; the kill left it on disk.
  const CommandResult listed = RunCommand("ls " + state_dir);
  EXPECT_NE(JoinLines(listed).find("snapshot-"), std::string::npos)
      << JoinLines(listed);

  // --- restart on the same directory, crash arming gone ---
  std::string banner;
  server = LaunchServer(maint_flags, &port, &banner);
  ASSERT_NE(server, nullptr);
  ASSERT_GT(port, 0) << banner;
  client =
      std::string(SLICETUNER_CLIENT_BIN) + " --port=" + std::to_string(port);

  // Every pre-crash session polls back finished.
  for (const char* session : {"m1", "m2", "m3", "m4"}) {
    const json::Value polled =
        LastJson(RunCommand(client + " poll --session=" + session));
    ASSERT_TRUE(polled.GetBool("ok")) << session << ": " << polled.Dump();
    EXPECT_EQ(polled.GetString("state"), "done") << session;
  }

  // Bounded replay: the crash happened after the snapshot published, so
  // restart replay applies at most a handful of journal records — not the
  // whole history.
  const json::Value stats = LastJson(RunCommand(client + " stats"));
  const json::Value* store_stats = stats.Find("store");
  ASSERT_NE(store_stats, nullptr) << stats.Dump();
  const json::Value* restore = store_stats->Find("startup_restore");
  ASSERT_NE(restore, nullptr) << stats.Dump();
  EXPECT_EQ(restore->GetInt("sessions_restored"), 4) << restore->Dump();
  EXPECT_LE(restore->GetInt("journal_records_applied"), 8)
      << restore->Dump();
  const json::Value* maintenance = store_stats->Find("maintenance");
  ASSERT_NE(maintenance, nullptr) << stats.Dump();
  EXPECT_TRUE(maintenance->GetBool("enabled"));

  // The tail gauge rides along for operators even before any warning.
  const json::Value metrics = LastJson(RunCommand(client + " metrics"));
  ASSERT_TRUE(metrics.GetBool("ok")) << metrics.Dump();
  const json::Value* gauges = metrics.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_TRUE(gauges->Has("store_journal_tail_bytes")) << metrics.Dump();

  // The restarted daemon serves new work and shuts down cleanly.
  const CommandResult fresh = RunCommand(
      client + " submit --session=m5 --rows=40 --budget=40 --rounds=1");
  EXPECT_TRUE(LastJson(fresh).GetBool("ok")) << JoinLines(fresh);
  EXPECT_EQ(RunCommand(client + " stream --session=m5").exit_code, 0);

  EXPECT_EQ(RunCommand(client + " shutdown").exit_code, 0);
  server_tail.clear();
  while (std::fgets(buf, sizeof(buf), server) != nullptr) {
    server_tail += buf;
  }
  const int second_status = ::pclose(server);
  EXPECT_TRUE(WIFEXITED(second_status));
  EXPECT_EQ(WEXITSTATUS(second_status), 0) << server_tail;
}

// Crash dumps: a deliberate SIGABRT inside the daemon must leave a
// parseable flight-recorder dump (and a best-effort metrics exposition)
// under <state-dir>/crash/ — the post-mortem contract of
// docs/OBSERVABILITY.md, exercised with the real signal handler.
TEST(ServeSmokeTest, CrashDumpSurvivesDeliberateAbort) {
  const std::string state_dir = testing::TempDir() + "/smoke_crash";
  (void)RunCommand("rm -rf " + state_dir);

  const CommandResult crashed =
      RunCommand(std::string(SLICETUNER_SERVE_BIN) +
                 " --port=0 --state-dir=" + state_dir + " --crash-test=abort");
  // SIGABRT through the shell surfaces as exit 128 + 6.
  EXPECT_EQ(crashed.exit_code, 134) << JoinLines(crashed);
  EXPECT_NE(JoinLines(crashed).find("crash-test: raising SIGABRT"),
            std::string::npos)
      << JoinLines(crashed);

  // The recorder dump is line-oriented text written from the signal
  // handler: `ts_ns thread kind trace_id session arg`, one record per
  // line, including the events the crash-test path recorded.
  std::ifstream recorder_dump(state_dir + "/crash/recorder.txt");
  ASSERT_TRUE(recorder_dump.is_open()) << "missing crash recorder dump";
  bool saw_recv = false;
  bool saw_done = false;
  std::string line;
  while (std::getline(recorder_dump, line)) {
    std::istringstream fields(line);
    long long ts_ns = 0;
    long long thread = -1;
    std::string kind, dumped_id, session, arg;
    fields >> ts_ns >> thread >> kind >> dumped_id >> session >> arg;
    EXPECT_GT(ts_ns, 0) << line;
    EXPECT_GE(thread, 0) << line;
    EXPECT_FALSE(kind.empty()) << line;
    EXPECT_EQ(dumped_id.size(), 16u) << line;
    if (session == "crash-test" && kind == "request_recv") saw_recv = true;
    if (session == "crash-test" && kind == "request_done") saw_done = true;
  }
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_done);

  // The metrics exposition is best-effort but present on this controlled
  // abort.
  std::ifstream metrics_dump(state_dir + "/crash/metrics.txt");
  EXPECT_TRUE(metrics_dump.is_open()) << "missing crash metrics dump";
}

}  // namespace
}  // namespace slicetuner
