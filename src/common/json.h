// Minimal JSON document model with a deterministic writer and a strict
// parser. This is the wire format of the serving subsystem (line-delimited
// request/response/progress frames, src/serve/protocol.h), the BENCH_*.json
// summaries the benchmark gate diffs, and the JSON view of simulation traces
// (sim/trace.h). No exceptions, no external dependencies: errors surface as
// Status, numbers round-trip exactly (integers as integers, doubles through
// shortest-representation formatting), and object keys keep insertion order
// so equal documents serialize to byte-identical strings.

#ifndef SLICETUNER_COMMON_JSON_H_
#define SLICETUNER_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace slicetuner {
namespace json {

/// Strict whole-string scalar parsers (no leading/trailing junk, overflow is
/// an error). These are the number lexers of the JSON parser, exported
/// because the sim trace format (sim/trace.cc) lexes its scalar fields the
/// same way.
Result<long long> ParseInt64(const std::string& text);
Result<uint64_t> ParseUint64(const std::string& text);
Result<double> ParseFloat64(const std::string& text);

/// Shortest decimal form of `value` that strtod parses back bit-identically
/// (integers without exponent where possible). Non-finite values have no
/// JSON representation and format as "null".
std::string FormatFloat64(double value);

/// A JSON document node. Copyable; object members keep insertion order.
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(int v) : type_(Type::kInt), int_(v) {}     // NOLINT
  Value(long long v) : type_(Type::kInt), int_(v) {}  // NOLINT
  Value(size_t v)  // NOLINT
      : type_(Type::kInt), int_(static_cast<long long>(v)) {}
  Value(double v) : type_(Type::kDouble), double_(v) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Value(std::string s)  // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}

  static Value Array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return is_bool() && bool_; }
  /// kInt as long long; kDouble truncated toward zero; 0 otherwise.
  long long int_value() const;
  /// kInt or kDouble as double; 0.0 otherwise.
  double number_value() const;
  /// kString content; empty otherwise.
  const std::string& string_value() const;

  // --- arrays ---
  size_t size() const { return items_.size(); }
  const Value& at(size_t i) const { return items_[i]; }
  void Append(Value item) { items_.push_back(std::move(item)); }
  const std::vector<Value>& items() const { return items_; }

  // --- objects ---
  /// Adds or overwrites `key` (overwrite keeps the original position).
  void Set(const std::string& key, Value value);
  /// Member lookup; nullptr when absent (or not an object).
  const Value* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  // Typed member accessors with defaults, for protocol decoding.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  long long GetInt(const std::string& key, long long fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Deep structural equality. An int and a double never compare equal
  /// (5 != 5.0), matching the round-trip guarantee of Dump/Parse.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Serializes the document. indent = 0 emits one compact line (the wire
  /// framing of the serve protocol); indent > 0 pretty-prints objects one
  /// member per line at `indent` spaces per level, with arrays kept inline
  /// (the BENCH_*.json layout).
  std::string Dump(int indent = 0) const;

  /// Parses one JSON document. The whole input must be consumed (trailing
  /// whitespace allowed). Depth is bounded to keep hostile input from
  /// overflowing the stack.
  static Result<Value> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Quotes and escapes `text` as a JSON string literal (including the
/// surrounding double quotes).
std::string EscapeString(const std::string& text);

}  // namespace json
}  // namespace slicetuner

#endif  // SLICETUNER_COMMON_JSON_H_
