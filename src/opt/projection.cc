#include "opt/projection.h"

#include <algorithm>
#include <cmath>

namespace slicetuner {

double Spend(const std::vector<double>& d, const std::vector<double>& costs) {
  double total = 0.0;
  for (size_t i = 0; i < d.size(); ++i) total += costs[i] * d[i];
  return total;
}

Result<std::vector<double>> ProjectOntoBudgetSimplex(
    const std::vector<double>& v, const std::vector<double>& costs,
    double budget) {
  const size_t n = v.size();
  if (costs.size() != n) {
    return Status::InvalidArgument("projection: costs size mismatch");
  }
  if (budget < 0.0) {
    return Status::InvalidArgument("projection: negative budget");
  }
  for (double c : costs) {
    if (c <= 0.0) {
      return Status::InvalidArgument("projection: non-positive cost");
    }
  }
  if (n == 0) return std::vector<double>{};

  // d_i(mu) = max(0, v_i - mu c_i); spend(mu) is continuous, non-increasing.
  auto spend_at = [&](double mu) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += costs[i] * std::max(0.0, v[i] - mu * costs[i]);
    }
    return total;
  };

  // Bracket mu: at mu_hi all coordinates clamp to zero (spend 0 <= B needs
  // mu_hi >= max(v_i / c_i)); decrease mu_lo until spend >= B.
  double mu_hi = 0.0;
  for (size_t i = 0; i < n; ++i) mu_hi = std::max(mu_hi, v[i] / costs[i]);
  double mu_lo = mu_hi;
  double width = std::max(1.0, mu_hi);
  while (spend_at(mu_lo) < budget) {
    mu_lo -= width;
    width *= 2.0;
    if (width > 1e30) {
      return Status::NumericalError("projection: cannot bracket multiplier");
    }
  }

  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (mu_lo + mu_hi);
    if (spend_at(mid) >= budget) {
      mu_lo = mid;
    } else {
      mu_hi = mid;
    }
  }
  const double mu = 0.5 * (mu_lo + mu_hi);
  std::vector<double> d(n);
  for (size_t i = 0; i < n; ++i) {
    d[i] = std::max(0.0, v[i] - mu * costs[i]);
  }
  // Exact budget: rescale the tiny residual error onto the support.
  const double s = Spend(d, costs);
  if (s > 0.0) {
    const double scale = budget / s;
    for (auto& x : d) x *= scale;
  }
  return d;
}

}  // namespace slicetuner
