#include "common/random.h"

#include <cmath>
#include <numeric>

namespace slicetuner {

namespace {

// splitmix64: used to expand the 64-bit seed into the 256-bit xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; avoid log(0) by shifting Uniform() away from zero.
  double u1 = Uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Exponential(double lambda) {
  double u = Uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    const size_t j = UniformInt(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  // Partial Fisher-Yates: O(n) memory but only k swaps.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + UniformInt(n - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

uint64_t Rng::ForkSeed(uint64_t index) const {
  // Condense the 256-bit state and the stream index into one 64-bit seed,
  // then run it through splitmix64 twice to decorrelate adjacent indices.
  uint64_t mix = state_[0] ^ Rotl(state_[1], 13) ^ Rotl(state_[2], 29) ^
                 Rotl(state_[3], 43);
  mix ^= 0x9E3779B97F4A7C15ULL * (index + 1);
  uint64_t sm = mix;
  (void)SplitMix64(&sm);
  return SplitMix64(&sm);
}

Rng Rng::Fork(uint64_t index) const { return Rng(ForkSeed(index)); }

}  // namespace slicetuner
