// Unit tests for src/common: Status/Result, Rng, math/string utilities, CSV,
// table printing, and the thread pool.

#include <gtest/gtest.h>

#include <cmath>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include <cstdlib>

#include "common/csv.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/trace_context.h"

namespace slicetuner {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(Status::InvalidArgument("").code());
  codes.insert(Status::OutOfRange("").code());
  codes.insert(Status::FailedPrecondition("").code());
  codes.insert(Status::NotFound("").code());
  codes.insert(Status::AlreadyExists("").code());
  codes.insert(Status::ResourceExhausted("").code());
  codes.insert(Status::Internal("").code());
  codes.insert(Status::NotImplemented("").code());
  codes.insert(Status::NumericalError("").code());
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::Internal("inner failed");
    return Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    ST_RETURN_NOT_OK(inner(fail));
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
}

TEST(StatusTest, StreamOperatorPrintsToString) {
  std::ostringstream oss;
  oss << Status::OutOfRange("idx");
  EXPECT_EQ(oss.str(), "OutOfRange: idx");
}

// ------------------------------------------------------------------ Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 5;
  EXPECT_EQ(r.value_or(-1), 5);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto consumer = [&](bool fail) -> Result<int> {
    ST_ASSIGN_OR_RETURN(int v, producer(fail));
    return v + 1;
  };
  EXPECT_EQ(consumer(false).value(), 8);
  EXPECT_EQ(consumer(true).status().code(), StatusCode::kInternal);
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(uint64_t{5}));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(12);
  const int n = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, LogNormalMeanMatchesClosedForm) {
  // E[exp(N(mu, sigma^2))] = exp(mu + sigma^2 / 2).
  Rng rng(14);
  const double mu = 1.0, sigma = 0.5;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.LogNormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + 0.5 * sigma * sigma), 0.05);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(16);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(18);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsLast) {
  Rng rng(19);
  EXPECT_EQ(rng.Categorical({0.0, 0.0, 0.0}), 2u);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(20);
  const auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(21);
  EXPECT_TRUE(rng.Permutation(0).empty());
  const auto one = rng.Permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(22);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementClampsK) {
  Rng rng(23);
  const auto sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementUniformity) {
  // Every index should be chosen roughly equally often.
  Rng rng(24);
  std::vector<int> counts(10, 0);
  const int reps = 20000;
  for (int r = 0; r < reps; ++r) {
    for (size_t v : rng.SampleWithoutReplacement(10, 3)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(reps), 0.3, 0.02);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(123);
  Rng child = a.Fork();
  Rng a2(123);
  Rng child2 = a2.Fork();
  // Same parent seed -> same child stream (determinism).
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child(), child2());
}

// --------------------------------------------------------------- math_util

TEST(MathUtilTest, Clamp) {
  EXPECT_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(Clamp(15.0, 0.0, 10.0), 10.0);
}

TEST(MathUtilTest, SafeLogClampsAtEpsilon) {
  EXPECT_DOUBLE_EQ(SafeLog(1.0), 0.0);
  EXPECT_GT(SafeLog(0.0), -30.0);  // clamped, not -inf
  EXPECT_LT(SafeLog(0.0), -20.0);
}

TEST(MathUtilTest, LogSumExpMatchesDirect) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const double direct =
      std::log(std::exp(0.0) + std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(LogSumExp(xs), direct, 1e-12);
}

TEST(MathUtilTest, LogSumExpStableForLargeInputs) {
  const std::vector<double> xs = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathUtilTest, MeanVarianceStdDev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);
  EXPECT_NEAR(SampleStdDev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(MathUtilTest, EmptyAndSingletonStats) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({1.0}), 0.0);
  EXPECT_EQ(SampleStdDev({1.0}), 0.0);
  EXPECT_EQ(StandardError({1.0}), 0.0);
}

TEST(MathUtilTest, MinMaxSum) {
  const std::vector<double> xs = {3.0, -1.0, 2.0};
  EXPECT_EQ(Max(xs), 3.0);
  EXPECT_EQ(Min(xs), -1.0);
  EXPECT_EQ(Sum(xs), 4.0);
}

TEST(MathUtilTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs = {-2.0, -4.0, -6.0};
  EXPECT_NEAR(PearsonCorrelation(xs, zs), -1.0, 1e-12);
}

TEST(MathUtilTest, PearsonDegenerateIsZero) {
  EXPECT_EQ(PearsonCorrelation({1.0, 1.0}, {2.0, 3.0}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
}

TEST(MathUtilTest, RSquaredPerfectAndMeanPredictor) {
  const std::vector<double> obs = {1.0, 2.0, 3.0};
  EXPECT_NEAR(RSquared(obs, obs), 1.0, 1e-12);
  const std::vector<double> mean_pred = {2.0, 2.0, 2.0};
  EXPECT_NEAR(RSquared(obs, mean_pred), 0.0, 1e-12);
}

TEST(MathUtilTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1));
  EXPECT_TRUE(AlmostEqual(1e9, 1e9 + 1.0, 1e-6));
}

// ------------------------------------------------------------- string_util

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StringUtilTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitEmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(Strip("  hi  "), "hi");
  EXPECT_EQ(Strip("\t\nhi"), "hi");
  EXPECT_EQ(Strip("   "), "");
  EXPECT_EQ(Strip("hi"), "hi");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// --------------------------------------------------------------------- CSV

TEST(CsvTest, EscapePlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::EscapeField("abc"), "abc");
}

TEST(CsvTest, EscapeQuotesAndCommas) {
  EXPECT_EQ(CsvWriter::EscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, WriteRowsRoundTrip) {
  const std::string path = testing::TempDir() + "/csv_test.csv";
  CsvWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.WriteRow({"h1", "h2"}).ok());
  ASSERT_TRUE(w.WriteNumericRow({1.5, 2.25}, 2).ok());
  ASSERT_TRUE(w.Close().ok());

  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "h1,h2");
  EXPECT_EQ(line2, "1.50,2.25");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteWithoutOpenFails) {
  CsvWriter w;
  EXPECT_EQ(w.WriteRow({"x"}).code(), StatusCode::kFailedPrecondition);
}

TEST(CsvTest, DoubleOpenFails) {
  const std::string path = testing::TempDir() + "/csv_test2.csv";
  CsvWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  EXPECT_FALSE(w.Open(path).ok());
  ASSERT_TRUE(w.Close().ok());
  std::remove(path.c_str());
}

// ------------------------------------------------------------ TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"A", "LongHeader"});
  t.AddRow({"xxxx", "y"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| A    | LongHeader |"), std::string::npos);
  EXPECT_NE(out.find("| xxxx | y          |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
  // Should render without crashing and contain the cell.
  EXPECT_NE(t.ToString().find("| 1 |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorAddsRule) {
  TablePrinter t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.ToString();
  // Header rule + top + bottom + middle separator = 4 horizontal rules.
  size_t rules = 0;
  for (size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  pool.ParallelFor(256, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DefaultPoolIsUsable) {
  std::atomic<int> counter{0};
  DefaultThreadPool().ParallelFor(8, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
  EXPECT_GE(DefaultThreadPool().num_threads(), 1u);
}

TEST(ThreadPoolTest, PendingCountTracksBacklogUnderConcurrentSubmits) {
  // 2 workers, every task gated: once both workers hold a task, everything
  // else must sit in the queue — the backlog signal admission control sheds
  // on. Submissions come from 4 threads concurrently.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  constexpr int kTasks = 12;
  constexpr int kSubmitters = 4;

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasks / kSubmitters; ++i) {
        pool.Submit([&] {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return release; });
        });
      }
    });
  }
  for (auto& t : submitters) t.join();

  // Both workers eventually block inside a task; the rest stay pending.
  for (int spin = 0; spin < 2000 && pool.InFlightCount() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.InFlightCount(), 2u);
  EXPECT_EQ(pool.PendingCount(), static_cast<size_t>(kTasks) - 2);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.WaitIdle();
  EXPECT_EQ(pool.PendingCount(), 0u);
  EXPECT_EQ(pool.InFlightCount(), 0u);
}

// --------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, ElapsedIsNonNegativeAndGrows) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  (void)sink;
  EXPECT_GE(sw.ElapsedSeconds(), t1);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

// ----------------------------------------------------------------- Logging

TEST(LoggingTest, ParseLogLevelNameAcceptsAliasesCaseInsensitively) {
  LogLevel level = LogLevel::kNone;
  EXPECT_TRUE(ParseLogLevelName("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevelName("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevelName("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevelName("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevelName("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevelName("none", &level));
  EXPECT_EQ(level, LogLevel::kNone);
  // Junk is rejected and leaves the output untouched.
  level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevelName("verbose", &level));
  EXPECT_FALSE(ParseLogLevelName("", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
}

TEST(LoggingTest, InitLoggingFromEnvHonorsLevelAndJsonSwitch) {
  const LogLevel saved_level = GetLogLevel();
  const LogFormat saved_format = GetLogFormat();

  setenv("SLICETUNER_LOG_LEVEL", "error", 1);
  setenv("SLICETUNER_LOG_JSON", "1", 1);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  EXPECT_EQ(GetLogFormat(), LogFormat::kJson);

  // A typo'd level must not change anything (a daemon cannot be silenced
  // by a misspelled env var), and an absent JSON switch leaves the format
  // alone.
  setenv("SLICETUNER_LOG_LEVEL", "eror", 1);
  unsetenv("SLICETUNER_LOG_JSON");
  SetLogFormat(LogFormat::kText);
  InitLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  EXPECT_EQ(GetLogFormat(), LogFormat::kText);

  unsetenv("SLICETUNER_LOG_LEVEL");
  SetLogLevel(saved_level);
  SetLogFormat(saved_format);
}

TEST(LoggingTest, FormatLogLineTextMode) {
  const std::string line = internal_logging::FormatLogLine(
      LogFormat::kText, LogLevel::kWarning, "src/serve/server.cc", 42,
      "queue full");
  EXPECT_EQ(line, "[WARN server.cc:42] queue full");
}

TEST(LoggingTest, FormatLogLineJsonModeIsParseableAndEscapes) {
  const std::string line = internal_logging::FormatLogLine(
      LogFormat::kJson, LogLevel::kError, "store.cc", 7,
      "path \"a\\b\" broke");
  const auto doc = json::Value::Parse(line);
  ASSERT_TRUE(doc.ok()) << line;
  EXPECT_EQ(doc->GetString("level"), "ERROR");
  EXPECT_EQ(doc->GetString("src"), "store.cc:7");
  EXPECT_EQ(doc->GetString("msg"), "path \"a\\b\" broke");
  EXPECT_GT(doc->GetInt("ts_ms"), 0);
}

TEST(LoggingTest, JsonModeCarriesActiveTraceId) {
  {
    trace::TraceScope scope(0x00000000deadbeefULL, "s1");
    const std::string line = internal_logging::FormatLogLine(
        LogFormat::kJson, LogLevel::kInfo, "server.cc", 9, "handling");
    const auto doc = json::Value::Parse(line);
    ASSERT_TRUE(doc.ok()) << line;
    EXPECT_EQ(doc->GetString("trace_id"), "00000000deadbeef");
  }
  // Outside a request scope the field is omitted entirely (not "").
  const std::string bare = internal_logging::FormatLogLine(
      LogFormat::kJson, LogLevel::kInfo, "server.cc", 9, "idle");
  const auto doc = json::Value::Parse(bare);
  ASSERT_TRUE(doc.ok()) << bare;
  EXPECT_FALSE(doc->Has("trace_id"));
}

}  // namespace
}  // namespace slicetuner
