// Write-ahead journal: the append-only half of the durable-state store.
//
// A journal file is a sequence of CRC-framed, line-delimited JSON records:
//
//   record   := crc8hex SP payload LF
//   crc8hex  := 8 lowercase hex digits — CRC32 (common/fs_util.h) of the
//               payload bytes
//   payload  := one JSON object, compact form (no interior newlines; the
//               deterministic writer of common/json.h guarantees this)
//
// The framing makes two failure modes detectable (docs/STATE.md spells out
// the full crash-recovery contract):
//
//   * torn tail — the process died mid-append, leaving a final record with
//     no LF, a short CRC prefix, or a CRC mismatch. Recovery keeps the valid
//     prefix and truncates the damage (`tail_truncated` reports it).
//   * mid-file corruption — a record fails its CRC but VALID records follow
//     it, which an append-only crash cannot produce (bit rot, manual edits).
//     Recovery refuses with DataLoss rather than silently dropping history.
//
// Durability is batched: Append buffers through stdio and only Sync()
// reaches fsync. Callers group-commit — the serving layer appends one record
// per acquisition and syncs once per finished job.

#ifndef SLICETUNER_STORE_JOURNAL_H_
#define SLICETUNER_STORE_JOURNAL_H_

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"

namespace slicetuner {
namespace store {

/// Frames `payload` (compact JSON + CRC header) as one journal line,
/// including the trailing newline. Exposed for tests that build journal
/// bytes by hand.
std::string FrameRecord(const json::Value& payload);

/// What reading a journal file yields.
struct JournalReadResult {
  /// Every intact record, in append order.
  std::vector<json::Value> records;
  /// True when a damaged tail (torn final record) was dropped.
  bool tail_truncated = false;
  /// Bytes of tail damage discarded (0 when tail_truncated is false).
  size_t bytes_discarded = 0;
  /// Byte offset of the end of the last valid record — the length a writer
  /// reopening this file must truncate it to before appending.
  size_t valid_bytes = 0;
};

/// Reads and validates a whole journal file. A missing file is an empty
/// journal (not an error). A damaged *tail* is tolerated and reported via
/// `tail_truncated`; a CRC/framing failure with intact records after it is
/// DataLoss-style corruption and fails with Internal (an append-only crash
/// cannot produce it, so recovery must not guess).
Result<JournalReadResult> ReadJournal(const std::string& path);

/// Appender. Open() validates any existing content first and physically
/// truncates a torn tail, so appended records always follow a valid prefix.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending (creating it if missing). Existing content
  /// is validated with ReadJournal semantics; a torn tail is truncated away
  /// before the first append, mid-file corruption fails the open.
  static Result<JournalWriter> Open(const std::string& path);

  /// Appends one framed record. Buffered: not durable until Sync().
  /// A failed write (real or injected short write) is healed in place: the
  /// file is truncated back to the last fully appended record, so one EIO
  /// never poisons the generation — later appends still recover cleanly.
  /// If even the heal fails the writer closes itself, so appends fail
  /// loudly instead of journaling after unhealed damage.
  Status Append(const json::Value& payload);

  /// Flushes buffered appends and fsyncs the file (the group-commit point).
  Status Sync();

  /// Sync, then close. Further Appends fail. Idempotent.
  Status Close();

  bool open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  /// Records appended through this writer (not counting pre-existing ones).
  size_t records_appended() const { return records_appended_; }
  /// Bytes of valid records in the file (pre-existing content at Open plus
  /// everything appended since) — the store's journal-tail accounting.
  size_t valid_length() const { return valid_length_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  size_t records_appended_ = 0;
  size_t valid_length_ = 0;
  bool dirty_ = false;  // appends since the last Sync
};

}  // namespace store
}  // namespace slicetuner

#endif  // SLICETUNER_STORE_JOURNAL_H_
