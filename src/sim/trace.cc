#include "sim/trace.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "common/string_util.h"

namespace slicetuner {
namespace sim {

namespace {

// %.12g keeps the format readable while exceeding the comparator tolerances
// by orders of magnitude; serialization of identical doubles is identical,
// so thread-count determinism checks can compare serialized traces.
std::string Num(double value) { return StrFormat("%.12g", value); }

std::string JoinLongs(const std::vector<long long>& values) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (long long v : values) parts.push_back(StrFormat("%lld", v));
  return parts.empty() ? "-" : Join(parts, " ");
}

std::string JoinDoubles(const std::vector<double>& values) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (double v : values) parts.push_back(Num(v));
  return parts.empty() ? "-" : Join(parts, " ");
}

// --- parsing -------------------------------------------------------------

struct LineReader {
  std::vector<std::string> lines;
  size_t next = 0;

  explicit LineReader(const std::string& text) {
    for (const std::string& raw : Split(text, '\n')) {
      const std::string line = Strip(raw);
      if (!line.empty()) lines.push_back(line);
    }
  }

  bool Done() const { return next >= lines.size(); }

  /// Consumes the next line, which must start with `key`, and returns the
  /// remainder after the key.
  Result<std::string> Take(const std::string& key) {
    if (Done()) {
      return Status::InvalidArgument("trace ended early, expected '" + key +
                                     "'");
    }
    const std::string& line = lines[next];
    if (!StartsWith(line, key) ||
        (line.size() > key.size() && line[key.size()] != ' ')) {
      return Status::InvalidArgument("expected '" + key + "', got '" + line +
                                     "'");
    }
    ++next;
    return Strip(line.substr(key.size()));
  }
};

// The scalar lexers are the JSON layer's (strict whole-string parsing with
// overflow detection); the trace format shares them instead of hand-rolling
// its own.
Result<long long> ParseLong(const std::string& text) {
  return json::ParseInt64(text);
}

Result<double> ParseDouble(const std::string& text) {
  return json::ParseFloat64(text);
}

Result<uint64_t> ParseUnsigned(const std::string& text) {
  return json::ParseUint64(text);
}

/// Take(key) + parse in one step for single-valued fields.
Result<long long> ParseField(LineReader* reader, const std::string& key) {
  ST_ASSIGN_OR_RETURN(const std::string text, reader->Take(key));
  return ParseLong(text);
}

Result<double> ParseDoubleField(LineReader* reader, const std::string& key) {
  ST_ASSIGN_OR_RETURN(const std::string text, reader->Take(key));
  return ParseDouble(text);
}

Result<std::vector<long long>> ParseLongs(const std::string& text) {
  std::vector<long long> out;
  if (text == "-") return out;
  for (const std::string& token : Split(text, ' ')) {
    if (token.empty()) continue;
    ST_ASSIGN_OR_RETURN(const long long value, ParseLong(token));
    out.push_back(value);
  }
  return out;
}

Result<std::vector<double>> ParseDoubles(const std::string& text) {
  std::vector<double> out;
  if (text == "-") return out;
  for (const std::string& token : Split(text, ' ')) {
    if (token.empty()) continue;
    ST_ASSIGN_OR_RETURN(const double value, ParseDouble(token));
    out.push_back(value);
  }
  return out;
}

// --- comparison ----------------------------------------------------------

bool Close(double x, double y, const TraceTolerance& tol) {
  if (x == y) return true;  // covers exact zero-tolerance equality
  const double scale = std::max(std::fabs(x), std::fabs(y));
  return std::fabs(x - y) <= tol.abs_tolerance + tol.rel_tolerance * scale;
}

class DiffReport {
 public:
  void Mismatch(const std::string& where, const std::string& expected,
                const std::string& actual) {
    out_ << "  " << where << ": expected " << expected << ", got " << actual
         << "\n";
  }

  void CheckLong(const std::string& where, long long expected,
                 long long actual) {
    if (expected != actual) {
      Mismatch(where, StrFormat("%lld", expected), StrFormat("%lld", actual));
    }
  }

  void CheckDouble(const std::string& where, double expected, double actual,
                   const TraceTolerance& tol) {
    if (!Close(expected, actual, tol)) {
      Mismatch(where, Num(expected), Num(actual));
    }
  }

  void CheckString(const std::string& where, const std::string& expected,
                   const std::string& actual) {
    if (expected != actual) Mismatch(where, expected, actual);
  }

  std::string Render() const {
    const std::string body = out_.str();
    if (body.empty()) return "";
    return "trace mismatch:\n" + body;
  }

 private:
  std::ostringstream out_;
};

template <typename T, typename Check>
void CheckVector(DiffReport* report, const std::string& where,
                 const std::vector<T>& expected, const std::vector<T>& actual,
                 const Check& check) {
  if (expected.size() != actual.size()) {
    report->Mismatch(where + ".size", StrFormat("%zu", expected.size()),
                     StrFormat("%zu", actual.size()));
    return;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    check(where + StrFormat("[%zu]", i), expected[i], actual[i]);
  }
}

}  // namespace

std::string SimTrace::Serialize() const {
  std::ostringstream out;
  out << "trace_version 1\n";
  out << "scenario " << scenario << "\n";
  out << "method " << method << "\n";
  out << "num_slices " << num_slices << "\n";
  out << "seed " << seed << "\n";
  out << "rounds " << rounds.size() << "\n";
  for (const RoundTrace& round : rounds) {
    out << "round " << round.round << "\n";
    out << "  budget " << Num(round.budget) << "\n";
    out << "  spent " << Num(round.spent) << "\n";
    out << "  drift_events " << round.drift_events << "\n";
    out << "  acquired " << JoinLongs(round.acquired) << "\n";
    out << "  sizes " << JoinLongs(round.sizes) << "\n";
    out << "  curve_b " << JoinDoubles(round.curve_b) << "\n";
    out << "  curve_a " << JoinDoubles(round.curve_a) << "\n";
    out << "  loss " << Num(round.loss) << "\n";
    out << "  avg_eer " << Num(round.avg_eer) << "\n";
    out << "  max_eer " << Num(round.max_eer) << "\n";
    out << "  iterations " << round.iterations << "\n";
    out << "  trainings " << round.model_trainings << "\n";
  }
  out << "total_acquired " << total_acquired << "\n";
  out << "total_spent " << Num(total_spent) << "\n";
  out << "total_trainings " << total_trainings << "\n";
  out << "final_loss " << Num(final_loss) << "\n";
  out << "final_avg_eer " << Num(final_avg_eer) << "\n";
  out << "final_max_eer " << Num(final_max_eer) << "\n";
  return out.str();
}

Result<SimTrace> SimTrace::Deserialize(const std::string& text) {
  LineReader reader(text);
  SimTrace trace;

  ST_ASSIGN_OR_RETURN(const std::string version, reader.Take("trace_version"));
  if (version != "1") {
    return Status::InvalidArgument("unsupported trace_version '" + version +
                                   "'");
  }
  ST_ASSIGN_OR_RETURN(trace.scenario, reader.Take("scenario"));
  ST_ASSIGN_OR_RETURN(trace.method, reader.Take("method"));
  ST_ASSIGN_OR_RETURN(const long long num_slices, ParseField(&reader,
                                                             "num_slices"));
  trace.num_slices = static_cast<int>(num_slices);
  {
    ST_ASSIGN_OR_RETURN(const std::string f, reader.Take("seed"));
    ST_ASSIGN_OR_RETURN(trace.seed, ParseUnsigned(f));
  }
  ST_ASSIGN_OR_RETURN(const long long num_rounds, ParseField(&reader,
                                                             "rounds"));

  for (long long r = 0; r < num_rounds; ++r) {
    RoundTrace round;
    ST_ASSIGN_OR_RETURN(const long long index, ParseField(&reader, "round"));
    round.round = static_cast<int>(index);
    ST_ASSIGN_OR_RETURN(round.budget, ParseDoubleField(&reader, "budget"));
    ST_ASSIGN_OR_RETURN(round.spent, ParseDoubleField(&reader, "spent"));
    {
      ST_ASSIGN_OR_RETURN(const long long v,
                          ParseField(&reader, "drift_events"));
      round.drift_events = static_cast<int>(v);
    }
    {
      ST_ASSIGN_OR_RETURN(const std::string f, reader.Take("acquired"));
      ST_ASSIGN_OR_RETURN(round.acquired, ParseLongs(f));
    }
    {
      ST_ASSIGN_OR_RETURN(const std::string f, reader.Take("sizes"));
      ST_ASSIGN_OR_RETURN(round.sizes, ParseLongs(f));
    }
    {
      ST_ASSIGN_OR_RETURN(const std::string f, reader.Take("curve_b"));
      ST_ASSIGN_OR_RETURN(round.curve_b, ParseDoubles(f));
    }
    {
      ST_ASSIGN_OR_RETURN(const std::string f, reader.Take("curve_a"));
      ST_ASSIGN_OR_RETURN(round.curve_a, ParseDoubles(f));
    }
    ST_ASSIGN_OR_RETURN(round.loss, ParseDoubleField(&reader, "loss"));
    ST_ASSIGN_OR_RETURN(round.avg_eer, ParseDoubleField(&reader, "avg_eer"));
    ST_ASSIGN_OR_RETURN(round.max_eer, ParseDoubleField(&reader, "max_eer"));
    {
      ST_ASSIGN_OR_RETURN(const long long v,
                          ParseField(&reader, "iterations"));
      round.iterations = static_cast<int>(v);
    }
    {
      ST_ASSIGN_OR_RETURN(const long long v, ParseField(&reader,
                                                        "trainings"));
      round.model_trainings = static_cast<int>(v);
    }
    trace.rounds.push_back(std::move(round));
  }

  ST_ASSIGN_OR_RETURN(trace.total_acquired,
                      ParseField(&reader, "total_acquired"));
  ST_ASSIGN_OR_RETURN(trace.total_spent,
                      ParseDoubleField(&reader, "total_spent"));
  {
    ST_ASSIGN_OR_RETURN(const long long v,
                        ParseField(&reader, "total_trainings"));
    trace.total_trainings = static_cast<int>(v);
  }
  ST_ASSIGN_OR_RETURN(trace.final_loss,
                      ParseDoubleField(&reader, "final_loss"));
  ST_ASSIGN_OR_RETURN(trace.final_avg_eer,
                      ParseDoubleField(&reader, "final_avg_eer"));
  ST_ASSIGN_OR_RETURN(trace.final_max_eer,
                      ParseDoubleField(&reader, "final_max_eer"));
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing content after trace");
  }
  return trace;
}

json::Value RoundTraceToJson(const RoundTrace& round) {
  auto longs = [](const std::vector<long long>& values) {
    json::Value array = json::Value::Array();
    for (const long long v : values) array.Append(v);
    return array;
  };
  auto doubles = [](const std::vector<double>& values) {
    json::Value array = json::Value::Array();
    for (const double v : values) array.Append(v);
    return array;
  };
  json::Value out = json::Value::Object();
  out.Set("round", round.round);
  out.Set("budget", round.budget);
  out.Set("spent", round.spent);
  out.Set("drift_events", round.drift_events);
  out.Set("acquired", longs(round.acquired));
  out.Set("sizes", longs(round.sizes));
  out.Set("curve_b", doubles(round.curve_b));
  out.Set("curve_a", doubles(round.curve_a));
  out.Set("loss", round.loss);
  out.Set("avg_eer", round.avg_eer);
  out.Set("max_eer", round.max_eer);
  out.Set("iterations", round.iterations);
  out.Set("trainings", round.model_trainings);
  return out;
}

json::Value SimTrace::ToJson() const {
  json::Value out = json::Value::Object();
  out.Set("scenario", scenario);
  out.Set("method", method);
  out.Set("num_slices", num_slices);
  out.Set("seed", static_cast<long long>(seed));
  json::Value round_array = json::Value::Array();
  for (const RoundTrace& round : rounds) {
    round_array.Append(RoundTraceToJson(round));
  }
  out.Set("rounds", std::move(round_array));
  out.Set("total_acquired", total_acquired);
  out.Set("total_spent", total_spent);
  out.Set("total_trainings", total_trainings);
  out.Set("final_loss", final_loss);
  out.Set("final_avg_eer", final_avg_eer);
  out.Set("final_max_eer", final_max_eer);
  return out;
}

std::string DiffTraces(const SimTrace& expected, const SimTrace& actual,
                       const TraceTolerance& tolerance) {
  DiffReport report;
  report.CheckString("scenario", expected.scenario, actual.scenario);
  report.CheckString("method", expected.method, actual.method);
  report.CheckLong("num_slices", expected.num_slices, actual.num_slices);
  report.CheckLong("seed", static_cast<long long>(expected.seed),
                   static_cast<long long>(actual.seed));
  if (expected.rounds.size() != actual.rounds.size()) {
    report.Mismatch("rounds", StrFormat("%zu", expected.rounds.size()),
                    StrFormat("%zu", actual.rounds.size()));
    return report.Render();
  }
  for (size_t r = 0; r < expected.rounds.size(); ++r) {
    const RoundTrace& e = expected.rounds[r];
    const RoundTrace& a = actual.rounds[r];
    const std::string where = StrFormat("round[%zu].", r);
    report.CheckLong(where + "round", e.round, a.round);
    report.CheckDouble(where + "budget", e.budget, a.budget, tolerance);
    report.CheckDouble(where + "spent", e.spent, a.spent, tolerance);
    report.CheckLong(where + "drift_events", e.drift_events, a.drift_events);
    CheckVector(&report, where + "acquired", e.acquired, a.acquired,
                [&](const std::string& w, long long x, long long y) {
                  report.CheckLong(w, x, y);
                });
    CheckVector(&report, where + "sizes", e.sizes, a.sizes,
                [&](const std::string& w, long long x, long long y) {
                  report.CheckLong(w, x, y);
                });
    CheckVector(&report, where + "curve_b", e.curve_b, a.curve_b,
                [&](const std::string& w, double x, double y) {
                  report.CheckDouble(w, x, y, tolerance);
                });
    CheckVector(&report, where + "curve_a", e.curve_a, a.curve_a,
                [&](const std::string& w, double x, double y) {
                  report.CheckDouble(w, x, y, tolerance);
                });
    report.CheckDouble(where + "loss", e.loss, a.loss, tolerance);
    report.CheckDouble(where + "avg_eer", e.avg_eer, a.avg_eer, tolerance);
    report.CheckDouble(where + "max_eer", e.max_eer, a.max_eer, tolerance);
    report.CheckLong(where + "iterations", e.iterations, a.iterations);
    report.CheckLong(where + "trainings", e.model_trainings,
                     a.model_trainings);
  }
  report.CheckLong("total_acquired", expected.total_acquired,
                   actual.total_acquired);
  report.CheckDouble("total_spent", expected.total_spent, actual.total_spent,
                     tolerance);
  report.CheckLong("total_trainings", expected.total_trainings,
                   actual.total_trainings);
  report.CheckDouble("final_loss", expected.final_loss, actual.final_loss,
                     tolerance);
  report.CheckDouble("final_avg_eer", expected.final_avg_eer,
                     actual.final_avg_eer, tolerance);
  report.CheckDouble("final_max_eer", expected.final_max_eer,
                     actual.final_max_eer, tolerance);
  return report.Render();
}

}  // namespace sim
}  // namespace slicetuner
