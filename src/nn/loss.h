// Softmax cross-entropy loss (the paper's log loss, Section 2.1) computed on
// raw logits. Forward returns the mean loss over the batch; Backward returns
// d(mean loss)/d(logits) = (softmax - onehot) / batch.

#ifndef SLICETUNER_NN_LOSS_H_
#define SLICETUNER_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace slicetuner {

/// Multi-class softmax cross-entropy.
class SoftmaxCrossEntropy {
 public:
  /// Computes mean -log p(label) over the batch; caches probabilities.
  /// `labels[i]` must be in [0, logits.cols()).
  double Forward(const Matrix& logits, const std::vector<int>& labels);

  /// Gradient with respect to the logits of the last Forward call.
  void Backward(Matrix* grad_logits) const;

  /// Probabilities computed by the last Forward (batch x classes).
  const Matrix& probabilities() const { return probs_; }

 private:
  Matrix probs_;
  std::vector<int> labels_;
};

/// Mean log loss of probability predictions vs labels, with clamping.
/// Standalone helper used by evaluation (no gradients).
double LogLoss(const Matrix& probabilities, const std::vector<int>& labels);

/// Fraction of rows whose argmax equals the label.
double Accuracy(const Matrix& probabilities, const std::vector<int>& labels);

}  // namespace slicetuner

#endif  // SLICETUNER_NN_LOSS_H_
