#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace slicetuner {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& r : rows) cols_ = std::max(cols_, r.size());
  data_.assign(rows_ * cols_, 0.0);
  size_t i = 0;
  for (const auto& r : rows) {
    size_t j = 0;
    for (double v : r) data_[i * cols_ + j++] = v;
    ++i;
  }
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::FillNormal(Rng* rng, double stddev) {
  for (auto& v : data_) v = rng->Normal(0.0, stddev);
}

void Matrix::FillUniform(Rng* rng, double limit) {
  for (auto& v : data_) v = rng->Uniform(-limit, limit);
}

void Matrix::FillGlorot(Rng* rng) {
  const double fan_in = static_cast<double>(rows_);
  const double fan_out = static_cast<double>(cols_);
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  FillUniform(rng, limit);
}

void Matrix::FillHe(Rng* rng) {
  const double fan_in = static_cast<double>(rows_);
  FillNormal(rng, std::sqrt(2.0 / std::max(fan_in, 1.0)));
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::RowCopy(size_t r) const {
  Matrix out(1, cols_);
  std::copy(row(r), row(r) + cols_, out.data());
  return out;
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  GatherRowsInto(indices, &out);
  return out;
}

void Matrix::GatherRowsInto(const std::vector<size_t>& indices,
                            Matrix* out) const {
  if (out->rows() != indices.size() || out->cols() != cols_) {
    *out = Matrix(indices.size(), cols_);
  }
  for (size_t i = 0; i < indices.size(); ++i) {
    std::copy(row(indices[i]), row(indices[i]) + cols_, out->row(i));
  }
}

void Matrix::CopyRowRangeInto(size_t begin, size_t end, Matrix* out) const {
  const size_t n = end - begin;
  if (out->rows() != n || out->cols() != cols_) *out = Matrix(n, cols_);
  std::copy(row(begin), row(begin) + n * cols_, out->data());
}

double Matrix::Norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

size_t Matrix::ArgMaxRow(size_t r) const {
  const double* p = row(r);
  size_t best = 0;
  for (size_t c = 1; c < cols_; ++c) {
    if (p[c] > p[best]) best = c;
  }
  return best;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream oss;
  oss << "Matrix(" << rows_ << "x" << cols_ << ")[";
  for (size_t r = 0; r < rows_; ++r) {
    oss << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) oss << ", ";
      oss << FormatDouble((*this)(r, c), precision);
    }
    oss << "]";
    if (r + 1 < rows_) oss << "\n";
  }
  oss << "]";
  return oss.str();
}

bool operator==(const Matrix& a, const Matrix& b) {
  if (!a.SameShape(b)) return false;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      if (a(r, c) != b(r, c)) return false;
    }
  }
  return true;
}

}  // namespace slicetuner
