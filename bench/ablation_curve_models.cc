// Ablation: which parametric family fits measured learning curves best?
// The paper adopts y = b x^-a citing [15, 22]; here we fit power law,
// power law + floor, exponential decay, and logarithmic curves to the
// actual measured per-slice learning curves of every preset and report the
// AIC winner per slice. Expected shape: power-law families dominate.

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/learning_curve.h"
#include "curvefit/model_selection.h"

int main() {
  using namespace slicetuner;
  std::printf("=== Ablation: learning-curve parametric families ===\n\n");

  CsvWriter csv;
  ST_CHECK_OK(csv.Open(bench::ResultsDir() + "/ablation_curve_models.csv"));
  ST_CHECK_OK(csv.WriteRow({"dataset", "slice", "best_model", "aic_best",
                            "aic_power_law"}));

  TablePrinter table({"Dataset", "power_law", "power_law_floor", "exp_decay",
                      "logarithmic"});
  for (const DatasetPreset& preset : AllPresets()) {
    Rng rng(4001);
    const int n = preset.num_slices();
    const Dataset train =
        preset.generator.GenerateDataset(EqualSizes(n, 400), &rng);
    const Dataset validation =
        preset.generator.GenerateDataset(EqualSizes(n, 200), &rng);
    LearningCurveOptions options = bench::BenchCurveOptions(5);
    options.num_points = 10;
    const auto curves = EstimateLearningCurves(
        train, validation, n, preset.model_spec, preset.trainer, options);
    ST_CHECK_OK(curves.status());

    std::map<std::string, int> wins;
    for (int s = 0; s < n; ++s) {
      const auto reports =
          CompareCurveModels(curves->slices[static_cast<size_t>(s)].points);
      if (reports.empty() || !reports.front().ok) continue;
      wins[reports.front().model_name] += 1;
      double aic_power = 0.0;
      for (const auto& r : reports) {
        if (r.model_name == "power_law") aic_power = r.aic;
      }
      ST_CHECK_OK(csv.WriteRow(
          {preset.name, preset.slice_names[static_cast<size_t>(s)],
           reports.front().model_name, FormatDouble(reports.front().aic, 2),
           FormatDouble(aic_power, 2)}));
    }
    table.AddRow({preset.name, StrFormat("%d", wins["power_law"]),
                  StrFormat("%d", wins["power_law_floor"]),
                  StrFormat("%d", wins["exp_decay"]),
                  StrFormat("%d", wins["logarithmic"])});
  }
  std::printf("AIC wins per family (count of slices where the family fits "
              "best):\n\n");
  table.Print(std::cout);
  ST_CHECK_OK(csv.Close());
  std::printf(
      "\nNote: over the narrow size range a curve is fitted on (10 points\n"
      "within one decade), the 2-parameter families are near-degenerate —\n"
      "log(x) and x^-a are locally indistinguishable. This reproduces the\n"
      "paper's observation that the power law 'fits as well as any other\n"
      "curve': no family dominates it, and its extrapolation behaviour\n"
      "(monotone decay to zero) is the safest for the optimizer.\n");
  std::printf("\nSeries written to results/ablation_curve_models.csv\n");
  return 0;
}
