#include "data/csv_loader.h"

#include <cstdlib>
#include <fstream>

#include "common/string_util.h"

namespace slicetuner {

namespace {

// Parses one CSV line (no embedded-quote support needed for numeric data,
// but quoted fields are unwrapped for robustness).
std::vector<std::string> ParseLine(const std::string& line) {
  std::vector<std::string> fields = Split(line, ',');
  for (auto& f : fields) {
    f = Strip(f);
    if (f.size() >= 2 && f.front() == '"' && f.back() == '"') {
      f = f.substr(1, f.size() - 2);
    }
  }
  return fields;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseNonNegativeInt(const std::string& text, int* out) {
  double value = 0.0;
  if (!ParseDouble(text, &value)) return false;
  if (value < 0.0 || value != static_cast<double>(static_cast<int>(value))) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

Result<Dataset> LoadCsvDataset(const std::string& path,
                               const CsvLoadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("CSV file is empty: " + path);
  }
  const std::vector<std::string> header = ParseLine(line);

  int label_idx = -1;
  int slice_idx = -1;
  std::vector<size_t> feature_columns;
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] == options.label_column) {
      label_idx = static_cast<int>(c);
    } else if (!options.slice_column.empty() &&
               header[c] == options.slice_column) {
      slice_idx = static_cast<int>(c);
    } else {
      feature_columns.push_back(c);
    }
  }
  if (label_idx < 0) {
    return Status::InvalidArgument("label column '" + options.label_column +
                                   "' not found in CSV header");
  }
  if (!options.slice_column.empty() && slice_idx < 0) {
    return Status::InvalidArgument("slice column '" + options.slice_column +
                                   "' not found in CSV header");
  }
  if (feature_columns.empty()) {
    return Status::InvalidArgument("CSV has no feature columns");
  }

  Dataset dataset(feature_columns.size());
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (Strip(line).empty()) continue;
    const std::vector<std::string> fields = ParseLine(line);
    if (fields.size() != header.size()) {
      if (options.strict) {
        return Status::InvalidArgument(
            StrFormat("line %zu: expected %zu fields, got %zu", line_number,
                      header.size(), fields.size()));
      }
      continue;
    }
    Example example;
    bool valid = true;
    example.features.reserve(feature_columns.size());
    for (size_t c : feature_columns) {
      double value = 0.0;
      if (!ParseDouble(fields[c], &value)) {
        valid = false;
        break;
      }
      example.features.push_back(value);
    }
    if (valid) {
      valid = ParseNonNegativeInt(fields[static_cast<size_t>(label_idx)],
                                  &example.label);
    }
    if (valid && slice_idx >= 0) {
      valid = ParseNonNegativeInt(fields[static_cast<size_t>(slice_idx)],
                                  &example.slice);
    }
    if (!valid) {
      if (options.strict) {
        return Status::InvalidArgument(
            StrFormat("line %zu: non-numeric or negative field", line_number));
      }
      continue;
    }
    ST_RETURN_NOT_OK(dataset.Append(example));
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("CSV contained no usable rows: " + path);
  }
  return dataset;
}

Status SaveCsvDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open CSV file for write: " + path);
  for (size_t d = 0; d < dataset.dim(); ++d) {
    out << "f" << d << ",";
  }
  out << "label,slice\n";
  for (size_t i = 0; i < dataset.size(); ++i) {
    const double* features = dataset.features(i);
    for (size_t d = 0; d < dataset.dim(); ++d) {
      out << FormatDouble(features[d], 6) << ",";
    }
    out << dataset.label(i) << "," << dataset.slice(i) << "\n";
  }
  if (!out) return Status::Internal("CSV write failed: " + path);
  return Status::OK();
}

}  // namespace slicetuner
