#include "opt/change_ratio.h"

#include <algorithm>
#include <cmath>

namespace slicetuner {

double ImbalanceRatio(const std::vector<double>& sizes) {
  double mx = sizes.front();
  double mn = sizes.front();
  for (double s : sizes) {
    mx = std::max(mx, s);
    mn = std::min(mn, s);
  }
  return mx / mn;
}

Result<double> GetChangeRatio(const std::vector<double>& sizes,
                              const std::vector<double>& num_examples,
                              double target_ratio) {
  const size_t n = sizes.size();
  if (n == 0 || num_examples.size() != n) {
    return Status::InvalidArgument("GetChangeRatio: arity mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    if (sizes[i] <= 0.0) {
      return Status::InvalidArgument(
          "GetChangeRatio: slice sizes must be positive");
    }
    if (num_examples[i] < 0.0) {
      return Status::InvalidArgument(
          "GetChangeRatio: negative acquisition");
    }
  }

  auto ratio_at = [&](double x) {
    double mx = 0.0;
    double mn = HUGE_VAL;
    for (size_t i = 0; i < n; ++i) {
      const double s = sizes[i] + x * num_examples[i];
      mx = std::max(mx, s);
      mn = std::min(mn, s);
    }
    return mx / mn;
  };

  const double r0 = ratio_at(0.0);
  const double r1 = ratio_at(1.0);
  // If the full plan stays within the limit (in either direction), keep it.
  if ((r1 >= r0 && target_ratio >= r1) || (r1 < r0 && target_ratio <= r1)) {
    return 1.0;
  }
  if ((r1 >= r0 && target_ratio <= r0) || (r1 < r0 && target_ratio >= r0)) {
    return 0.0;
  }

  double lo = 0.0, hi = 1.0;
  const bool increasing = r1 >= r0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double r = ratio_at(mid);
    const bool below = increasing ? (r < target_ratio) : (r > target_ratio);
    if (below) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace slicetuner
