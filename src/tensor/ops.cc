#include "tensor/ops.h"

#include <cmath>

namespace slicetuner {

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  if (out->rows() != m || out->cols() != n) *out = Matrix(m, n);
  out->Zero();
  // i-k-j loop order: streams through b and out rows sequentially.
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.row(i);
    double* orow = out->row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = arow[kk];
      if (av == 0.0) continue;
      const double* brow = b.row(kk);
      for (size_t j = 0; j < n; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

void MatMulTransposedB(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  if (out->rows() != m || out->cols() != n) *out = Matrix(m, n);
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.row(i);
    double* orow = out->row(i);
    for (size_t j = 0; j < n; ++j) {
      const double* brow = b.row(j);
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
}

void MatMulTransposedA(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t k = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  if (out->rows() != m || out->cols() != n) *out = Matrix(m, n);
  out->Zero();
  for (size_t kk = 0; kk < k; ++kk) {
    const double* arow = a.row(kk);
    const double* brow = b.row(kk);
    for (size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out->row(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void AddRowBroadcast(Matrix* m, const Matrix& bias) {
  for (size_t r = 0; r < m->rows(); ++r) {
    double* row = m->row(r);
    const double* b = bias.data();
    for (size_t c = 0; c < m->cols(); ++c) row[c] += b[c];
  }
}

void ColumnSum(const Matrix& m, Matrix* out) {
  if (out->rows() != 1 || out->cols() != m.cols()) *out = Matrix(1, m.cols());
  out->Zero();
  double* o = out->data();
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    for (size_t c = 0; c < m.cols(); ++c) o[c] += row[c];
  }
}

void SoftmaxRows(Matrix* m) {
  for (size_t r = 0; r < m->rows(); ++r) {
    double* row = m->row(r);
    double mx = row[0];
    for (size_t c = 1; c < m->cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (size_t c = 0; c < m->cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const double inv = 1.0 / sum;
    for (size_t c = 0; c < m->cols(); ++c) row[c] *= inv;
  }
}

void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) {
  if (!out->SameShape(a)) *out = Matrix(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out->data();
  for (size_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
  return;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix Scale(const Matrix& a, double scalar) {
  Matrix out = a;
  out *= scalar;
  return out;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  double mx = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (size_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::fabs(pa[i] - pb[i]));
  }
  return mx;
}

}  // namespace slicetuner
