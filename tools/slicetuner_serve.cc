// slicetuner_serve: the tuning service daemon. Binds 127.0.0.1:<port>,
// serves the line-delimited JSON protocol (src/serve/protocol.h), and on
// graceful shutdown writes a serve_stats.json summary into the results
// directory (SLICETUNER_RESULTS_DIR honored, like every bench).
//
// Usage:
//   slicetuner_serve [--port=0] [--threads=N] [--max-queue=16]
//                    [--max-batch=8] [--retry-after-ms=50]
//                    [--max-backlog=0] [--workers=0] [--max-connections=64]
//                    [--state-dir=DIR] [--metrics-dump=PATH]
//
// --state-dir makes sessions durable (src/store/, docs/STATE.md): startup
// replays the directory's snapshot + journal tail so sessions resume warm,
// the `snapshot`/`restore` admin verbs work, and a final checkpoint is
// written on graceful shutdown.
//
// --metrics-dump writes the metrics registry's Prometheus-style text
// exposition (docs/OBSERVABILITY.md) to PATH on graceful shutdown; "-"
// dumps to stdout. Live values are available any time via the `metrics`
// protocol verb.
//
// Honors SLICETUNER_LOG_LEVEL (debug|info|warning|error|none) and
// SLICETUNER_LOG_JSON=1 for structured logs (src/common/logging.h).
//
// Prints "slicetuner_serve listening on 127.0.0.1:<port>" once ready (the
// smoke test and scripts read the ephemeral port off this line).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace slicetuner;

  InitLoggingFromEnv();

  serve::ServerOptions options;
  options.port = bench::ParseIntFlag(argc, argv, "--port=", 0);
  options.max_concurrent_sessions =
      bench::ParseThreadsFlag(argc, argv, /*default=*/0);
  options.admission.max_queue_depth = static_cast<size_t>(
      bench::ParseIntFlag(argc, argv, "--max-queue=", 16));
  options.admission.max_batch = static_cast<size_t>(
      bench::ParseIntFlag(argc, argv, "--max-batch=", 8));
  options.admission.retry_after_ms =
      bench::ParseIntFlag(argc, argv, "--retry-after-ms=", 50);
  options.admission.max_executor_backlog = static_cast<size_t>(
      bench::ParseIntFlag(argc, argv, "--max-backlog=", 0));
  options.num_workers = bench::ParseIntFlag(argc, argv, "--workers=", 0);
  options.max_connections =
      bench::ParseIntFlag(argc, argv, "--max-connections=", 64);
  options.state_dir = bench::ParseStringFlag(argc, argv, "--state-dir=", "");
  const std::string metrics_dump =
      bench::ParseStringFlag(argc, argv, "--metrics-dump=", "");

  serve::TuningServer server(options);
  ST_CHECK_OK(server.Start());
  std::printf("slicetuner_serve listening on 127.0.0.1:%d\n", server.port());
  std::printf("queue depth %zu, batch %zu, retry-after %d ms\n",
              options.admission.max_queue_depth, options.admission.max_batch,
              options.admission.retry_after_ms);
  if (!options.state_dir.empty()) {
    const serve::RestoreReport& report = server.restore_report();
    std::printf("state dir %s: restored %zu session(s), %zu warm slice(s), "
                "%zu journal record(s) replayed%s\n",
                options.state_dir.c_str(), report.sessions_restored,
                report.warm_slices, report.journal_records_applied,
                report.tail_truncated ? " (torn journal tail truncated)"
                                      : "");
  }
  std::fflush(stdout);

  server.Wait();

  if (!metrics_dump.empty()) {
    const std::string exposition =
        obs::MetricsRegistry::Global().TextExposition();
    if (metrics_dump == "-") {
      std::fputs(exposition.c_str(), stdout);
      std::fflush(stdout);
    } else {
      ST_CHECK_OK(WriteStringToFile(metrics_dump, exposition));
      std::printf("metrics written to %s\n", metrics_dump.c_str());
    }
  }

  const std::string stats_path = ResultsDir() + "/serve_stats.json";
  ST_CHECK_OK(
      WriteStringToFile(stats_path, server.StatsJson().Dump(2) + "\n"));
  std::printf("shut down cleanly; stats written to %s\n", stats_path.c_str());
  return 0;
}
