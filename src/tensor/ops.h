// Free-function kernels on Matrix: matmul, softmax, reductions. These are the
// hot loops of model training.
//
// The matmul family runs a cache-blocked, register-tiled kernel that can fan
// row blocks out across the shared ThreadPool (common/parallel_for.h). Every
// kernel keeps a fixed per-element accumulation order — k strictly ascending
// with a single accumulator chain — so results are bit-identical to the kept
// naive reference kernels and identical at any thread count. Intra-op
// threading engages only above a flop threshold and only when the calling
// thread is not already inside an engine-level ParallelFor lane, so nested
// use (curve estimation fanning out trainings whose GEMMs would otherwise
// also fan out) cannot oversubscribe the pool.
//
// Exception to bit-identity: the naive kernels skip multiplications by an
// exactly-zero left operand, while the blocked kernels perform them. On
// finite inputs the two can therefore differ only in the *sign* of an
// exactly-zero output entry (-0.0 vs +0.0), which no downstream consumer
// (exp, log, comparisons, formatting of nonzero values) can observe. If the
// right operand holds inf/NaN opposite an exact zero (e.g. a diverged
// training), the blocked kernels propagate NaN (0 * inf) where the naive
// skip would not — the numerically honest behavior.

#ifndef SLICETUNER_TENSOR_OPS_H_
#define SLICETUNER_TENSOR_OPS_H_

#include "tensor/matrix.h"

namespace slicetuner {

/// Process-wide lane budget for the blocked matmul kernels: 1 = never thread
/// intra-op, 0 = up to every pool worker (default), N > 1 = at most N lanes.
/// Thread-safe; typically set once at startup (benches: --threads=N).
void SetTensorOpThreads(int num_threads);
int GetTensorOpThreads();

/// out = a * b. Shapes must agree (a: m x k, b: k x n, out: m x n); `out` is
/// resized as needed. `out` must not alias a or b.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b + bias (bias: 1 x n row broadcast over all m rows). The bias
/// add happens in the GEMM epilogue while the output block is cache-hot;
/// bit-identical to MatMul followed by AddRowBroadcast.
void MatMulBias(const Matrix& a, const Matrix& b, const Matrix& bias,
                Matrix* out);

/// out = a * b^T (a: m x k, b: n x k, out: m x n). Cache-friendly for the
/// backward pass.
void MatMulTransposedB(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b (a: k x m, b: k x n, out: m x n).
void MatMulTransposedA(const Matrix& a, const Matrix& b, Matrix* out);

/// Reference implementations: the simple scalar kernels the blocked versions
/// are validated against (tests/micro bench). Single-threaded.
void MatMulNaive(const Matrix& a, const Matrix& b, Matrix* out);
void MatMulTransposedBNaive(const Matrix& a, const Matrix& b, Matrix* out);
void MatMulTransposedANaive(const Matrix& a, const Matrix& b, Matrix* out);

/// Adds a 1 x n bias row to every row of `m` (in place).
void AddRowBroadcast(Matrix* m, const Matrix& bias);

/// Column-wise sum of `m` into a 1 x cols matrix.
void ColumnSum(const Matrix& m, Matrix* out);

/// Row-wise softmax (in place), numerically stabilized.
void SoftmaxRows(Matrix* m);

/// Element-wise product: out = a ⊙ b (resized to match).
void Hadamard(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a + b (element-wise).
Matrix Add(const Matrix& a, const Matrix& b);

/// out = a - b (element-wise).
Matrix Sub(const Matrix& a, const Matrix& b);

/// out = scalar * a.
Matrix Scale(const Matrix& a, double scalar);

/// Maximum absolute difference between entries of equally-shaped matrices.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace slicetuner

#endif  // SLICETUNER_TENSOR_OPS_H_
