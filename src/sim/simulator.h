// Simulator: drives one acquisition method through a ScenarioSpec's full
// multi-round loop — drift applied at round boundaries, per-round budgets,
// acquisition from the scripted source, end-of-round evaluation — and emits
// a SimTrace. SimulateGrid fans whole scenario x method grids out through
// the engine's ExperimentRunner with streamed progress and optional
// first-failure cancellation.
//
// Determinism: every stochastic stream forks off the scenario seed, curve
// estimation inherits the engine's thread-count-invariant fan-out, and grid
// cells are independent, so a trace is a pure function of (spec, method) —
// bit-identical at any num_threads / concurrency setting.

#ifndef SLICETUNER_SIM_SIMULATOR_H_
#define SLICETUNER_SIM_SIMULATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/scenario.h"
#include "sim/trace.h"

namespace slicetuner {
namespace sim {

/// Every acquisition policy the simulator can drive: Slice Tuner's one-shot
/// and iterative variants, the three baselines, and the bandit ablation.
enum class SimMethod {
  kOneShot,
  kAggressive,
  kModerate,
  kConservative,
  kUniform,
  kWaterFilling,
  kProportional,
  kBandit,
};

const char* SimMethodName(SimMethod method);

/// All methods in a stable order (the grid axis of the regression suite).
std::vector<SimMethod> AllSimMethods();

struct SimOptions {
  /// Engine lanes for curve estimation inside a cell (1 = serial, 0 = every
  /// pool worker). Traces are identical at any setting.
  int num_threads = 1;
  /// Serve unchanged slices from the tuner's curve cache across rounds.
  bool cache_curves = true;
  /// Streamed after every completed round (on the simulating thread).
  std::function<void(const RoundTrace&)> on_round;
};

/// Runs `method` through the scenario's whole schedule. Validates the spec.
Result<SimTrace> Simulate(const ScenarioSpec& spec, SimMethod method,
                          const SimOptions& options = {});

/// One scenario x method cell of a grid.
struct SimCellResult {
  std::string name;  // "<scenario>/<method>"
  Status status;
  SimTrace trace;  // valid when status.ok()
  double wall_seconds = 0.0;
};

struct SimGridOptions {
  SimOptions cell;
  /// Concurrent cells (ExperimentRunner sessions): 1 = sequential, 0 = one
  /// per pool lane. Traces are identical at any setting.
  int max_concurrent_cells = 0;
  /// Cancel not-yet-started cells after the first failure.
  bool cancel_on_failure = false;
  /// Streamed once per cell as it resolves, from whichever lane finished it
  /// (invocations are serialized). Cells cancelled before starting are
  /// notified after the run completes.
  std::function<void(const std::string&, const Status&)> on_cell;
};

/// Fans the full scenario x method grid out through the ExperimentRunner.
/// Results arrive in grid order (scenario-major). Per-cell failures are
/// in-band; the call itself only fails on an empty grid.
Result<std::vector<SimCellResult>> SimulateGrid(
    const std::vector<ScenarioSpec>& scenarios,
    const std::vector<SimMethod>& methods,
    const SimGridOptions& options = {});

}  // namespace sim
}  // namespace slicetuner

#endif  // SLICETUNER_SIM_SIMULATOR_H_
