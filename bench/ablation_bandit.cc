// Ablation: curve-based convex optimization (Moderate) versus a
// rotting-bandit-style epsilon-greedy acquirer (Section 7's alternative
// framing) versus Uniform, at equal budget. The bandit learns rewards only
// from observed loss changes, so it needs one model training per pull; the
// expected shape is that Moderate matches or beats it on loss/unfairness
// while training far fewer models.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/math_util.h"
#include "common/table_printer.h"
#include "core/bandit.h"
#include "core/metrics.h"
#include "core/slice_tuner.h"

namespace slicetuner {
namespace {

struct Summary {
  double loss = 0.0;
  double eer = 0.0;
  double trainings = 0.0;
};

}  // namespace
}  // namespace slicetuner

int main() {
  using namespace slicetuner;
  std::printf("=== Ablation: convex optimizer vs acquisition bandit ===\n\n");

  const DatasetPreset preset = MakeCensusLike();
  const double kBudget = 600.0;
  const int kTrials = 3;

  CsvWriter csv;
  ST_CHECK_OK(csv.Open(bench::ResultsDir() + "/ablation_bandit.csv"));
  ST_CHECK_OK(csv.WriteRow({"method", "loss", "avg_eer", "model_trainings"}));

  TablePrinter table(
      {"Method", "Loss", "Avg. EER", "Model trainings / trial"});
  const char* kMethods[] = {"Uniform", "Bandit (eps-greedy)",
                            "Moderate (Slice Tuner)"};
  for (int m = 0; m < 3; ++m) {
    std::vector<double> losses, eers;
    double trainings = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(1000 + 97 * static_cast<uint64_t>(trial));
      Dataset train =
          preset.generator.GenerateDataset(EqualSizes(4, 100), &rng);
      const Dataset validation =
          preset.generator.GenerateDataset(EqualSizes(4, 200), &rng);
      SyntheticPool source(&preset.generator,
                           std::make_unique<TableCost>(preset.costs),
                           rng());

      SliceTunerOptions options;
      options.model_spec = preset.model_spec;
      options.trainer = preset.trainer;
      options.curve_options = bench::BenchCurveOptions(rng());
      options.lambda = 1.0;
      auto tuner = SliceTuner::Create(train, validation, 4, options);
      ST_CHECK_OK(tuner.status());

      if (m == 0) {
        const auto run = tuner->AcquireBaseline(&source, kBudget,
                                                BaselineKind::kUniform);
        ST_CHECK_OK(run.status());
        trainings += 0.0;
      } else if (m == 1) {
        // The bandit operates directly on the dataset; rebuild a tuner
        // around the grown data for evaluation parity.
        Dataset bandit_train = tuner->train();
        BanditOptions bandit;
        bandit.batch_size = 50;
        bandit.seed = rng();
        const auto run = RunBanditAcquisition(
            &bandit_train, validation, 4, preset.model_spec, preset.trainer,
            &source, kBudget, bandit);
        ST_CHECK_OK(run.status());
        trainings += run->model_trainings;
        auto regrown = SliceTuner::Create(bandit_train, validation, 4,
                                          options);
        ST_CHECK_OK(regrown.status());
        tuner = std::move(regrown);
      } else {
        IterativeOptions it;
        const auto run = tuner->Acquire(&source, kBudget, it);
        ST_CHECK_OK(run.status());
        trainings += run->model_trainings;
      }
      const auto metrics = tuner->Evaluate(rng());
      ST_CHECK_OK(metrics.status());
      losses.push_back(metrics->overall_loss);
      eers.push_back(metrics->avg_eer);
    }
    const Summary summary{Mean(losses), Mean(eers),
                          trainings / kTrials};
    table.AddRow({kMethods[m], FormatDouble(summary.loss, 3),
                  FormatDouble(summary.eer, 3),
                  FormatDouble(summary.trainings, 1)});
    ST_CHECK_OK(csv.WriteRow({kMethods[m], FormatDouble(summary.loss, 4),
                              FormatDouble(summary.eer, 4),
                              FormatDouble(summary.trainings, 1)}));
  }
  std::printf("Census-like, init 100/slice, B = %.0f, %d trials\n\n", kBudget,
              kTrials);
  table.Print(std::cout);
  std::printf("\nThe bandit retrains after every 50-example pull; Slice "
              "Tuner amortizes\nK trainings per iteration over all slices "
              "and plans with fitted curves.\n");
  ST_CHECK_OK(csv.Close());
  std::printf("Series written to results/ablation_bandit.csv\n");
  return 0;
}
