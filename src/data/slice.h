// Slicing: assignment of examples to slices by conjunctions of feature-value
// predicates or by label (Section 2.1). Also an entropy-guided automatic
// slicer in the spirit of Appendix A.

#ifndef SLICETUNER_DATA_SLICE_H_
#define SLICETUNER_DATA_SLICE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace slicetuner {

/// Equality predicate on one feature: features[feature_index] == value
/// (within tolerance, since categorical features are stored as doubles).
struct Predicate {
  size_t feature_index = 0;
  double value = 0.0;

  bool Matches(const double* features) const;
};

/// A named slice defined by a conjunction of predicates
/// (e.g., region=Europe AND gender=Female).
struct SliceSpec {
  std::string name;
  std::vector<Predicate> conjuncts;

  bool Matches(const double* features) const;
};

/// Maps examples to slice ids via an ordered list of SliceSpecs (first match
/// wins). Examples matching no spec get slice id = specs.size() ("other").
class Slicer {
 public:
  explicit Slicer(std::vector<SliceSpec> specs) : specs_(std::move(specs)) {}

  int Assign(const double* features) const;

  /// Re-labels every row's slice id in `dataset` according to this slicer,
  /// returning a new dataset.
  Dataset Apply(const Dataset& dataset) const;

  size_t num_slices() const { return specs_.size() + 1; }
  const std::vector<SliceSpec>& specs() const { return specs_; }

 private:
  std::vector<SliceSpec> specs_;
};

/// Assigns slice id = label for every example (the Fashion-MNIST style
/// slicing where each class is a slice).
Dataset SliceByLabel(const Dataset& dataset);

/// Appendix A: automatic slicing by recursive binary splits that maximize
/// label-entropy reduction, stopping when slices are small or pure enough.
/// Returns slice assignments (one id per row) and the number of slices.
struct AutoSliceResult {
  std::vector<int> assignments;
  int num_slices = 0;
};

struct AutoSliceOptions {
  size_t min_slice_size = 50;
  int max_slices = 16;
  /// Stop splitting when a node's label entropy is below this (nats).
  double entropy_threshold = 0.1;
};

Result<AutoSliceResult> AutoSlice(const Dataset& dataset,
                                  const AutoSliceOptions& options);

/// Shannon entropy (nats) of the label distribution of the given rows.
double LabelEntropy(const Dataset& dataset, const std::vector<size_t>& rows);

}  // namespace slicetuner

#endif  // SLICETUNER_DATA_SLICE_H_
