// Microbenchmarks for the curve-fitting substrate: Levenberg-Marquardt on
// the power-law families, the size-weighted fitter, and bootstrap averaging.
// The runtime here justifies the paper's claim that curve fitting is cheap
// relative to model training.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/random.h"
#include "curvefit/curve_models.h"
#include "curvefit/fitter.h"
#include "curvefit/levenberg_marquardt.h"

namespace slicetuner {
namespace {

std::vector<CurvePoint> MakePoints(size_t n, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<CurvePoint> points;
  double x = 20.0;
  for (size_t i = 0; i < n; ++i) {
    points.push_back(CurvePoint{
        x, 2.5 * std::pow(x, -0.3) * (1.0 + rng.Normal(0.0, noise))});
    x *= 1.4;
  }
  return points;
}

void BM_FitPowerLaw(benchmark::State& state) {
  const auto points =
      MakePoints(static_cast<size_t>(state.range(0)), 0.05, 1);
  for (auto _ : state) {
    auto fit = FitPowerLaw(points);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_FitPowerLaw)->Arg(8)->Arg(16)->Arg(64);

void BM_FitPowerLawAveraged(benchmark::State& state) {
  const auto points = MakePoints(10, 0.05, 2);
  FitOptions options;
  options.num_draws = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto fit = FitPowerLawAveraged(points, options);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_FitPowerLawAveraged)->Arg(1)->Arg(5)->Arg(10);

void BM_LmPowerLawFloor(benchmark::State& state) {
  const auto points = MakePoints(16, 0.02, 3);
  std::vector<double> xs, ys;
  for (const auto& p : points) {
    xs.push_back(p.size);
    ys.push_back(p.loss + 0.2);
  }
  PowerLawFloorModel model;
  const auto init = model.InitialGuess(xs, ys);
  for (auto _ : state) {
    auto fit = LevenbergMarquardt(model, xs, ys, {}, init);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_LmPowerLawFloor);

}  // namespace
}  // namespace slicetuner

BENCHMARK_MAIN();
