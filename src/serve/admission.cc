#include "serve/admission.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "serve/serve_metrics.h"

namespace slicetuner {
namespace serve {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
}

Status AdmissionController::Admit(uint64_t session_id) {
  // Probe outside the lock: the probe may itself take the pool lock.
  size_t backlog = 0;
  if (options_.max_executor_backlog > 0 && options_.backlog_probe) {
    backlog = options_.backlog_probe();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return Status::FailedPrecondition("server is shutting down");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      ++stats_.shed_queue_full;
      ServeMetrics::Get().shed_queue_full->Add();
      return Status::ResourceExhausted(StrFormat(
          "admission queue full (%zu/%zu)", queue_.size(),
          options_.max_queue_depth));
    }
    if (options_.max_executor_backlog > 0 &&
        backlog > options_.max_executor_backlog) {
      ++stats_.shed_backlog;
      ServeMetrics::Get().shed_backlog->Add();
      return Status::ResourceExhausted(StrFormat(
          "executor backlog %zu exceeds %zu", backlog,
          options_.max_executor_backlog));
    }
    queue_.push_back(session_id);
    ++stats_.admitted;
    stats_.max_depth_seen = std::max(stats_.max_depth_seen, queue_.size());
    ServeMetrics::Get().admitted->Add();
    ServeMetrics::Get().queue_depth->Set(
        static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
  return Status::OK();
}

std::vector<uint64_t> AdmissionController::NextBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
  std::vector<uint64_t> batch;
  const size_t take = std::min(queue_.size(), options_.max_batch);
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  if (!batch.empty()) {
    ++stats_.batches;
    ServeMetrics::Get().batch_size->Record(batch.size());
    ServeMetrics::Get().queue_depth->Set(
        static_cast<double>(queue_.size()));
  }
  return batch;
}

void AdmissionController::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  work_cv_.notify_all();
}

bool AdmissionController::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopped_;
}

size_t AdmissionController::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace slicetuner
