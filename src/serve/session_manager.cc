#include "serve/session_manager.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/baselines.h"
#include "core/one_shot.h"
#include "sim/scenario.h"
#include "sim/trace.h"

namespace slicetuner {
namespace serve {

namespace {

// Compiles a JobSpec into the scenario the session's data world is built
// from. Margins and noise floors vary deterministically across slices so
// curves differ and the optimizer has real trade-offs to make.
sim::ScenarioSpec ScenarioFromJob(const JobSpec& job) {
  sim::ScenarioSpec spec;
  spec.name = "serve/" + job.session;
  spec.num_slices = job.num_slices;
  spec.dim = 8;
  const size_t n = static_cast<size_t>(job.num_slices);
  spec.slice_margins.resize(n);
  spec.slice_label_noise.resize(n);
  spec.initial_sizes.assign(n, static_cast<size_t>(job.rows_per_slice));
  spec.costs.assign(n, 1.0);
  for (size_t s = 0; s < n; ++s) {
    spec.slice_margins[s] = 0.7 + 0.25 * static_cast<double>(s % 4);
    spec.slice_label_noise[s] = 0.04 + 0.02 * static_cast<double>(s % 3);
  }
  spec.val_per_slice = 40;
  spec.budget_schedule.assign(static_cast<size_t>(job.rounds),
                              job.budget / job.rounds);
  spec.lambda = 1.0;
  spec.seed = job.seed;
  // Small exhaustive estimation: per-slice trainings are what make the
  // curve cache's partial refit observable (K trainings per stale slice
  // instead of K x |S|).
  spec.curve_points = 3;
  spec.curve_draws = 1;
  spec.exhaustive_curves = true;
  spec.trainer_epochs = 8;
  return spec;
}

Result<BaselineKind> BaselineFromMethod(const std::string& method) {
  if (method == "uniform") return BaselineKind::kUniform;
  if (method == "water_filling") return BaselineKind::kWaterFilling;
  if (method == "proportional") return BaselineKind::kProportional;
  return Status::InvalidArgument("not a baseline method: '" + method + "'");
}

}  // namespace

const char* SessionPhaseName(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kQueued:
      return "queued";
    case SessionPhase::kRunning:
      return "running";
    case SessionPhase::kDone:
      return "done";
    case SessionPhase::kCancelled:
      return "cancelled";
    case SessionPhase::kFailed:
      return "failed";
  }
  return "?";
}

TuningSession::TuningSession(uint64_t id, JobSpec job)
    : id_(id), name_(job.session), pending_job_(std::move(job)) {}

void TuningSession::RequestCancel() {
  cancel_requested_.store(true, std::memory_order_relaxed);
}

SessionPhase TuningSession::phase() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_;
}

bool TuningSession::Terminal() const {
  const SessionPhase p = phase();
  return p == SessionPhase::kDone || p == SessionPhase::kCancelled ||
         p == SessionPhase::kFailed;
}

bool TuningSession::WaitTerminal(int timeout_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  return phase_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [this] {
                              return phase_ == SessionPhase::kDone ||
                                     phase_ == SessionPhase::kCancelled ||
                                     phase_ == SessionPhase::kFailed;
                            });
}

size_t TuningSession::FrameCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

json::Value TuningSession::FrameAt(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= frames_.size()) return json::Value();
  return frames_[index];
}

Status TuningSession::last_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_status_;
}

long long TuningSession::last_job_trainings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_job_trainings_;
}

double TuningSession::last_job_wall_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_job_wall_seconds_;
}

json::Value TuningSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value out = json::Value::Object();
  out.Set("session", name_);
  out.Set("state", SessionPhaseName(phase_));
  out.Set("jobs_run", jobs_run_);
  out.Set("rounds_completed", rounds_completed_);
  out.Set("frames", frames_.size());
  out.Set("rows", rows_);
  out.Set("model_trainings", total_trainings_);
  out.Set("last_job_trainings", last_job_trainings_);
  out.Set("last_job_wall_seconds", last_job_wall_seconds_);
  if (!last_status_.ok()) out.Set("error", last_status_.ToString());
  if (!final_curve_b_.empty()) {
    json::Value curves = json::Value::Object();
    json::Value b = json::Value::Array();
    json::Value a = json::Value::Array();
    for (const double v : final_curve_b_) b.Append(v);
    for (const double v : final_curve_a_) a.Append(v);
    curves.Set("b", std::move(b));
    curves.Set("a", std::move(a));
    out.Set("curves", std::move(curves));
  }
  if (has_cache_stats_) {
    json::Value cache = json::Value::Object();
    cache.Set("estimate_calls", cache_stats_.estimate_calls);
    cache.Set("served_from_cache", cache_stats_.served_from_cache);
    cache.Set("full_runs", cache_stats_.full_runs);
    cache.Set("partial_refits", cache_stats_.partial_refits);
    cache.Set("slices_refit", cache_stats_.slices_refit);
    cache.Set("slices_reused", cache_stats_.slices_reused);
    cache.Set("trainings_saved", cache_stats_.trainings_saved);
    out.Set("curve_cache", std::move(cache));
  }
  return out;
}

void TuningSession::AppendFrame(json::Value frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_.push_back(std::move(frame));
}

Status TuningSession::Resume(JobSpec job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ == SessionPhase::kQueued || phase_ == SessionPhase::kRunning) {
    return Status::AlreadyExists("session '" + name_ + "' is busy (" +
                                 SessionPhaseName(phase_) + ")");
  }
  // An omitted slice count inherits the session's; an explicit one must
  // match (the data world is fixed at creation).
  const int existing =
      tuner_ != nullptr ? tuner_->num_slices() : pending_job_.num_slices;
  if (job.num_slices == 0) {
    job.num_slices = existing;
  } else if (job.num_slices != existing) {
    return Status::InvalidArgument(StrFormat(
        "session '%s' holds %d slices; resubmission asks for %d",
        name_.c_str(), existing, job.num_slices));
  }
  if (job.append_slice >= job.num_slices) {
    return Status::OutOfRange(
        StrFormat("submit_job: append_slice %d outside [0, %d)",
                  job.append_slice, job.num_slices));
  }
  pending_job_ = std::move(job);
  cancel_requested_.store(false, std::memory_order_relaxed);
  phase_ = SessionPhase::kQueued;
  return Status::OK();
}

Status TuningSession::RunJob() {
  JobSpec job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (phase_ != SessionPhase::kQueued) {
      return Status::FailedPrecondition(
          "RunJob on session '" + name_ + "' in state " +
          SessionPhaseName(phase_));
    }
    if (cancel_requested_.load(std::memory_order_relaxed)) {
      phase_ = SessionPhase::kCancelled;
      last_status_ = Status::Cancelled("cancelled before start");
      phase_cv_.notify_all();
      return last_status_;
    }
    phase_ = SessionPhase::kRunning;
    job = pending_job_;
  }

  Stopwatch timer;
  const long long trainings_before = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return total_trainings_;
  }();
  const Status status = ExecuteJob(job);
  const double wall = timer.ElapsedSeconds();
  // Snapshot the engine counters while no estimation is running (tuner_ is
  // only touched from this thread); polls then read the copy without
  // touching the engine lock.
  engine::CurveEngineStats cache_stats;
  const bool has_cache_stats = tuner_ != nullptr;
  if (has_cache_stats) cache_stats = tuner_->curve_engine().stats();

  std::lock_guard<std::mutex> lock(mu_);
  if (has_cache_stats) {
    cache_stats_ = cache_stats;
    has_cache_stats_ = true;
  }
  ++jobs_run_;
  last_job_wall_seconds_ = wall;
  last_job_trainings_ = total_trainings_ - trainings_before;
  last_status_ = status;
  if (status.ok()) {
    phase_ = SessionPhase::kDone;
  } else if (status.code() == StatusCode::kCancelled) {
    phase_ = SessionPhase::kCancelled;
  } else {
    phase_ = SessionPhase::kFailed;
  }
  phase_cv_.notify_all();
  return status;
}

Status TuningSession::ExecuteJob(const JobSpec& job) {
  if (tuner_ == nullptr) {
    const sim::ScenarioSpec spec = ScenarioFromJob(job);
    ST_RETURN_NOT_OK(spec.Validate());
    auto source = std::make_unique<sim::ScriptedSource>(spec);

    SliceTunerOptions options;
    options.model_spec = spec.BuildModelSpec();
    options.trainer = spec.BuildTrainer();
    options.curve_options = spec.BuildCurveOptions(/*num_threads=*/1);
    options.lambda = spec.lambda;
    options.cache_curves = true;
    ST_ASSIGN_OR_RETURN(
        SliceTuner tuner,
        SliceTuner::Create(source->GenerateInitial(),
                           source->GenerateValidation(), job.num_slices,
                           std::move(options)));
    auto owned = std::make_unique<SliceTuner>(std::move(tuner));
    {
      std::lock_guard<std::mutex> lock(mu_);
      source_ = std::move(source);
      tuner_ = std::move(owned);
      rows_ = static_cast<long long>(tuner_->train().size());
    }
  } else if (job.append_rows > 0) {
    // Incremental update: new rows for one slice arrive with the
    // resubmission. Only that slice's content hash changes, so the next
    // estimation partially refits instead of running cold.
    source_->BeginRound(next_round_index_);
    const Dataset batch = source_->Acquire(
        job.append_slice, static_cast<size_t>(job.append_rows));
    // The append consumed this round index's acquisition stream; advance so
    // the job's first round draws fresh examples instead of replaying the
    // exact draws that produced the appended rows (BeginRound re-seeds as a
    // pure function of (seed, round)).
    ++next_round_index_;
    ST_RETURN_NOT_OK(tuner_->AppendTrainingData(batch));
    std::lock_guard<std::mutex> lock(mu_);
    rows_ = static_cast<long long>(tuner_->train().size());
  }
  return RunRounds(job);
}

Status TuningSession::RunRounds(const JobSpec& job) {
  const double round_budget = job.budget / job.rounds;
  const std::vector<double> costs =
      CostVector(source_->cost(), job.num_slices);
  const bool curve_based = job.method == "moderate";

  for (int r = 0; r < job.rounds; ++r) {
    if (cancel_requested_.load(std::memory_order_relaxed)) {
      return Status::Cancelled(StrFormat(
          "session '%s' cancelled after %d of %d rounds", name_.c_str(), r,
          job.rounds));
    }
    source_->BeginRound(next_round_index_);

    sim::RoundTrace round;
    round.round = next_round_index_;
    round.budget = round_budget;

    std::vector<long long> allocation;
    if (curve_based) {
      ST_ASSIGN_OR_RETURN(const CurveEstimationResult curves,
                          tuner_->EstimateCurves());
      round.model_trainings = curves.model_trainings;
      round.curve_b.reserve(curves.slices.size());
      round.curve_a.reserve(curves.slices.size());
      for (const SliceCurveEstimate& slice : curves.slices) {
        round.curve_b.push_back(slice.curve.b);
        round.curve_a.push_back(slice.curve.a);
      }
      ST_ASSIGN_OR_RETURN(
          const OneShotPlan plan,
          PlanOneShotWithCurves(curves.slices, tuner_->SliceSizes(), costs,
                                round_budget, tuner_->options().lambda));
      allocation = plan.examples;
    } else {
      ST_ASSIGN_OR_RETURN(const BaselineKind kind,
                          BaselineFromMethod(job.method));
      ST_ASSIGN_OR_RETURN(
          allocation,
          BaselineAllocation(kind, tuner_->SliceSizes(), costs,
                             round_budget));
    }

    for (size_t s = 0; s < allocation.size(); ++s) {
      if (allocation[s] <= 0) continue;
      const Dataset batch = source_->Acquire(
          static_cast<int>(s), static_cast<size_t>(allocation[s]));
      ST_RETURN_NOT_OK(tuner_->AppendTrainingData(batch));
      round.spent += static_cast<double>(allocation[s]) * costs[s];
    }
    round.acquired = std::move(allocation);
    const std::vector<size_t> sizes = tuner_->SliceSizes();
    round.sizes.reserve(sizes.size());
    for (const size_t size : sizes) {
      round.sizes.push_back(static_cast<long long>(size));
    }

    json::Value frame;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++rounds_completed_;
      total_trainings_ += round.model_trainings;
      rows_ = static_cast<long long>(tuner_->train().size());
      frame = ProgressFrame(name_, frames_.size(),
                            sim::RoundTraceToJson(round));
      frames_.push_back(frame);
    }
    ++next_round_index_;
  }

  // Closing estimate on the final data. Besides giving the client curves
  // that reflect everything acquired, this brings the curve cache up to
  // date with the session's resting state — so a resubmission that appends
  // rows to one slice finds every *other* slice already cached and rides
  // the engine's partial refit instead of a cold estimation.
  if (curve_based) {
    ST_ASSIGN_OR_RETURN(const CurveEstimationResult curves,
                        tuner_->EstimateCurves());
    std::lock_guard<std::mutex> lock(mu_);
    total_trainings_ += curves.model_trainings;
    final_curve_b_.clear();
    final_curve_a_.clear();
    for (const SliceCurveEstimate& slice : curves.slices) {
      final_curve_b_.push_back(slice.curve.b);
      final_curve_a_.push_back(slice.curve.a);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

Result<TuningSession*> SessionManager::Register(const JobSpec& job,
                                                bool* created) {
  if (created != nullptr) *created = false;
  ST_RETURN_NOT_OK(job.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->name() != job.session) continue;
    ST_RETURN_NOT_OK(session->Resume(job));
    ++stats_.resumed;
    return session.get();
  }
  JobSpec resolved = job;
  if (resolved.num_slices == 0) {
    resolved.num_slices = JobSpec::kDefaultNumSlices;
  }
  if (resolved.append_slice >= resolved.num_slices) {
    return Status::OutOfRange(
        StrFormat("submit_job: append_slice %d outside [0, %d)",
                  resolved.append_slice, resolved.num_slices));
  }
  sessions_.push_back(std::make_unique<TuningSession>(next_id_++, resolved));
  ++stats_.created;
  if (created != nullptr) *created = true;
  return sessions_.back().get();
}

void SessionManager::Drop(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if ((*it)->id() != id) continue;
    --stats_.created;  // the session never became visible to clients
    sessions_.erase(it);
    return;
  }
}

TuningSession* SessionManager::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->name() == name) return session.get();
  }
  return nullptr;
}

TuningSession* SessionManager::FindById(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->id() == id) return session.get();
  }
  return nullptr;
}

Status SessionManager::Cancel(const std::string& name) {
  TuningSession* session = Find(name);
  if (session == nullptr) {
    return Status::NotFound("unknown session '" + name + "'");
  }
  if (session->Terminal()) {
    return Status::FailedPrecondition(
        "session '" + name + "' already finished (" +
        SessionPhaseName(session->phase()) + ")");
  }
  session->RequestCancel();
  return Status::OK();
}

size_t SessionManager::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t active = 0;
  for (const auto& session : sessions_) {
    const SessionPhase p = session->phase();
    if (p == SessionPhase::kQueued || p == SessionPhase::kRunning) ++active;
  }
  return active;
}

size_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void SessionManager::RecordOutcome(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (status.ok()) {
    ++stats_.completed;
  } else if (status.code() == StatusCode::kCancelled) {
    ++stats_.cancelled;
  } else {
    ++stats_.failed;
  }
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

json::Value SessionManager::StatsJson() const {
  const SessionManagerStats s = stats();
  json::Value out = json::Value::Object();
  out.Set("sessions", session_count());
  out.Set("active", active_count());
  out.Set("created", s.created);
  out.Set("resumed", s.resumed);
  out.Set("completed", s.completed);
  out.Set("cancelled", s.cancelled);
  out.Set("failed", s.failed);
  return out;
}

}  // namespace serve
}  // namespace slicetuner
