#include "curvefit/fitter.h"

#include <cmath>

#include "common/math_util.h"
#include "curvefit/curve_models.h"
#include "curvefit/levenberg_marquardt.h"

namespace slicetuner {

json::Value CurvePointsToJson(const std::vector<CurvePoint>& points) {
  json::Value out = json::Value::Array();
  for (const CurvePoint& p : points) {
    json::Value pair = json::Value::Array();
    pair.Append(p.size);
    pair.Append(p.loss);
    out.Append(std::move(pair));
  }
  return out;
}

Result<std::vector<CurvePoint>> CurvePointsFromJson(const json::Value& value) {
  if (!value.is_array()) {
    return Status::InvalidArgument("CurvePointsFromJson: expected an array");
  }
  std::vector<CurvePoint> points;
  points.reserve(value.size());
  for (const json::Value& item : value.items()) {
    if (!item.is_array() || item.size() != 2 || !item.at(0).is_number() ||
        !item.at(1).is_number()) {
      return Status::InvalidArgument(
          "CurvePointsFromJson: each point must be [size, loss]");
    }
    CurvePoint p;
    p.size = item.at(0).number_value();
    p.loss = item.at(1).number_value();
    points.push_back(p);
  }
  return points;
}

Result<PowerLawCurve> FitPowerLaw(const std::vector<CurvePoint>& points,
                                  bool size_weighted) {
  std::vector<double> xs, ys, ws;
  for (const CurvePoint& p : points) {
    if (p.size <= 0.0 || p.loss <= 0.0 || !std::isfinite(p.loss)) continue;
    xs.push_back(p.size);
    ys.push_back(p.loss);
    ws.push_back(size_weighted ? p.size : 1.0);
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument(
        "FitPowerLaw: need at least 2 valid points");
  }
  // Normalize weights to mean 1 for better LM conditioning.
  const double wsum = Sum(ws);
  for (auto& w : ws) w *= static_cast<double>(ws.size()) / wsum;

  PowerLawModel model;
  ST_ASSIGN_OR_RETURN(
      LmFit fit, LevenbergMarquardt(model, xs, ys, ws,
                                    model.InitialGuess(xs, ys)));
  PowerLawCurve curve;
  curve.b = fit.params[0];
  curve.a = fit.params[1];
  return curve;
}

Result<PowerLawCurve> FitPowerLawAveraged(
    const std::vector<CurvePoint>& points, const FitOptions& options) {
  ST_ASSIGN_OR_RETURN(PowerLawCurve base,
                      FitPowerLaw(points, options.size_weighted));
  if (options.num_draws <= 1 || points.size() < 3) return base;

  Rng rng(options.seed);
  // Average the curves in log-parameter space: the mean of b is taken
  // geometrically so one outlier draw cannot dominate.
  double sum_log_b = 0.0;
  double sum_a = 0.0;
  int ok = 0;
  for (int d = 0; d < options.num_draws; ++d) {
    std::vector<CurvePoint> resampled;
    resampled.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      resampled.push_back(points[rng.UniformInt(points.size())]);
    }
    Result<PowerLawCurve> fit = FitPowerLaw(resampled, options.size_weighted);
    if (!fit.ok()) continue;
    sum_log_b += std::log(fit->b);
    sum_a += fit->a;
    ++ok;
  }
  if (ok == 0) return base;
  PowerLawCurve avg;
  avg.b = std::exp(sum_log_b / ok);
  avg.a = sum_a / ok;
  return avg;
}

double CurveLogR2(const PowerLawCurve& curve,
                  const std::vector<CurvePoint>& points) {
  std::vector<double> observed, predicted;
  for (const CurvePoint& p : points) {
    if (p.size <= 0.0 || p.loss <= 0.0) continue;
    observed.push_back(std::log(p.loss));
    predicted.push_back(std::log(std::max(curve.Eval(p.size), 1e-12)));
  }
  return RSquared(observed, predicted);
}

}  // namespace slicetuner
