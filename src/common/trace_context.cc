#include "common/trace_context.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace slicetuner {
namespace trace {

namespace {

thread_local Context t_context;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t ProcessSeed() {
  static const uint64_t seed = SplitMix64(static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  return seed;
}

}  // namespace

const Context& CurrentContext() { return t_context; }

uint64_t CurrentTraceId() { return t_context.trace_id; }

uint64_t MintTraceId() {
  static std::atomic<uint64_t> next{1};
  uint64_t id = 0;
  while (id == 0) {
    id = SplitMix64(ProcessSeed() ^
                    next.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

std::string FormatTraceId(uint64_t id) {
  if (id == 0) return "";
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

uint64_t ParseTraceId(const std::string& text) {
  if (text.empty() || text.size() > 16) return 0;
  uint64_t id = 0;
  for (char c : text) {
    uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return 0;
    }
    id = (id << 4) | digit;
  }
  return id;
}

TraceScope::TraceScope(uint64_t trace_id, const std::string& session) {
  saved_ = t_context;
  t_context.trace_id = trace_id;
  const size_t n =
      session.size() < kMaxSessionLen ? session.size() : kMaxSessionLen;
  std::memcpy(t_context.session, session.data(), n);
  t_context.session[n] = '\0';
}

TraceScope::~TraceScope() { t_context = saved_; }

}  // namespace trace
}  // namespace slicetuner
