#include "serve/session_manager.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/trace_context.h"
#include "core/baselines.h"
#include "core/one_shot.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "serve/serve_metrics.h"
#include "sim/scenario.h"
#include "sim/trace.h"

namespace slicetuner {
namespace serve {

namespace {

// Compiles a JobSpec into the scenario the session's data world is built
// from. Margins and noise floors vary deterministically across slices so
// curves differ and the optimizer has real trade-offs to make.
sim::ScenarioSpec ScenarioFromJob(const JobSpec& job) {
  sim::ScenarioSpec spec;
  spec.name = "serve/" + job.session;
  spec.num_slices = job.num_slices;
  spec.dim = 8;
  const size_t n = static_cast<size_t>(job.num_slices);
  spec.slice_margins.resize(n);
  spec.slice_label_noise.resize(n);
  spec.initial_sizes.assign(n, static_cast<size_t>(job.rows_per_slice));
  spec.costs.assign(n, 1.0);
  for (size_t s = 0; s < n; ++s) {
    spec.slice_margins[s] = 0.7 + 0.25 * static_cast<double>(s % 4);
    spec.slice_label_noise[s] = 0.04 + 0.02 * static_cast<double>(s % 3);
  }
  spec.val_per_slice = 40;
  spec.budget_schedule.assign(static_cast<size_t>(job.rounds),
                              job.budget / job.rounds);
  spec.lambda = 1.0;
  spec.seed = job.seed;
  // Small exhaustive estimation: per-slice trainings are what make the
  // curve cache's partial refit observable (K trainings per stale slice
  // instead of K x |S|).
  spec.curve_points = 3;
  spec.curve_draws = 1;
  spec.exhaustive_curves = true;
  spec.trainer_epochs = 8;
  return spec;
}

Result<BaselineKind> BaselineFromMethod(const std::string& method) {
  if (method == "uniform") return BaselineKind::kUniform;
  if (method == "water_filling") return BaselineKind::kWaterFilling;
  if (method == "proportional") return BaselineKind::kProportional;
  return Status::InvalidArgument("not a baseline method: '" + method + "'");
}

}  // namespace

const char* SessionPhaseName(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kQueued:
      return "queued";
    case SessionPhase::kRunning:
      return "running";
    case SessionPhase::kDone:
      return "done";
    case SessionPhase::kCancelled:
      return "cancelled";
    case SessionPhase::kFailed:
      return "failed";
  }
  return "?";
}

TuningSession::TuningSession(uint64_t id, JobSpec job,
                             store::DurableStore* store)
    : id_(id),
      name_(job.session),
      store_(store),
      creation_job_(job),
      pending_job_(std::move(job)) {
  enqueued_ns_.store(obs::MonotonicNanos(), std::memory_order_relaxed);
  // No other thread can see the session yet, but LogEventLocked documents
  // a mu_ requirement, so honor it.
  std::lock_guard<std::mutex> lock(mu_);
  json::Value event = json::Value::Object();
  event.Set("event", "create");
  event.Set("job", creation_job_.ToJson());
  LogEventLocked(std::move(event));
}

void TuningSession::LogEventLocked(json::Value event) {
  if (store_ == nullptr) return;
  event.Set("session", name_);
  event.Set("id", static_cast<long long>(id_));
  event.Set("seq", static_cast<long long>(events_logged_++));
  const Status appended = store_->Append(event);
  if (!appended.ok()) {
    // Serving keeps going on a sick disk; durability degrades, correctness
    // of the live session does not.
    ST_LOG(Warning) << "journal append failed for session '" << name_
                    << "': " << appended.ToString();
  }
}

void TuningSession::LogDropped() {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value event = json::Value::Object();
  event.Set("event", "drop");
  LogEventLocked(std::move(event));
}

void TuningSession::RequestCancel() {
  cancel_requested_.store(true, std::memory_order_relaxed);
}

SessionPhase TuningSession::phase() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_;
}

bool TuningSession::Terminal() const {
  const SessionPhase p = phase();
  return p == SessionPhase::kDone || p == SessionPhase::kCancelled ||
         p == SessionPhase::kFailed;
}

bool TuningSession::WaitTerminal(int timeout_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  return phase_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [this] {
                              return phase_ == SessionPhase::kDone ||
                                     phase_ == SessionPhase::kCancelled ||
                                     phase_ == SessionPhase::kFailed;
                            });
}

size_t TuningSession::FrameCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

json::Value TuningSession::FrameAt(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= frames_.size()) return json::Value();
  return frames_[index];
}

Status TuningSession::last_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_status_;
}

long long TuningSession::last_job_trainings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_job_trainings_;
}

double TuningSession::last_job_wall_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_job_wall_seconds_;
}

json::Value TuningSession::TraceTree() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_trace_tree_;
}

json::Value TuningSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value out = json::Value::Object();
  out.Set("session", name_);
  out.Set("state", SessionPhaseName(phase_));
  const uint64_t trace_id = trace_id_.load(std::memory_order_relaxed);
  if (trace_id != 0) {
    out.Set("trace_id", trace::FormatTraceId(trace_id));
  }
  out.Set("jobs_run", jobs_run_);
  out.Set("rounds_completed", rounds_completed_);
  out.Set("frames", frames_.size());
  out.Set("rows", rows_);
  out.Set("model_trainings", total_trainings_);
  out.Set("last_job_trainings", last_job_trainings_);
  out.Set("last_job_wall_seconds", last_job_wall_seconds_);
  if (!last_status_.ok()) out.Set("error", last_status_.ToString());
  if (!final_curve_b_.empty()) {
    json::Value curves = json::Value::Object();
    json::Value b = json::Value::Array();
    json::Value a = json::Value::Array();
    for (const double v : final_curve_b_) b.Append(v);
    for (const double v : final_curve_a_) a.Append(v);
    curves.Set("b", std::move(b));
    curves.Set("a", std::move(a));
    out.Set("curves", std::move(curves));
  }
  if (has_cache_stats_) {
    json::Value cache = json::Value::Object();
    cache.Set("estimate_calls", cache_stats_.estimate_calls);
    cache.Set("served_from_cache", cache_stats_.served_from_cache);
    cache.Set("full_runs", cache_stats_.full_runs);
    cache.Set("partial_refits", cache_stats_.partial_refits);
    cache.Set("slices_refit", cache_stats_.slices_refit);
    cache.Set("slices_reused", cache_stats_.slices_reused);
    cache.Set("trainings_saved", cache_stats_.trainings_saved);
    out.Set("curve_cache", std::move(cache));
  }
  return out;
}

void TuningSession::AppendFrame(json::Value frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_.push_back(std::move(frame));
}

Status TuningSession::Resume(JobSpec job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ == SessionPhase::kQueued || phase_ == SessionPhase::kRunning) {
    return Status::AlreadyExists("session '" + name_ + "' is busy (" +
                                 SessionPhaseName(phase_) + ")");
  }
  // An omitted slice count inherits the session's; an explicit one must
  // match (the data world is fixed at creation).
  const int existing =
      tuner_ != nullptr ? tuner_->num_slices() : pending_job_.num_slices;
  if (job.num_slices == 0) {
    job.num_slices = existing;
  } else if (job.num_slices != existing) {
    return Status::InvalidArgument(StrFormat(
        "session '%s' holds %d slices; resubmission asks for %d",
        name_.c_str(), existing, job.num_slices));
  }
  if (job.append_slice >= job.num_slices) {
    return Status::OutOfRange(
        StrFormat("submit_job: append_slice %d outside [0, %d)",
                  job.append_slice, job.num_slices));
  }
  pending_job_ = std::move(job);
  cancel_requested_.store(false, std::memory_order_relaxed);
  enqueued_ns_.store(obs::MonotonicNanos(), std::memory_order_relaxed);
  phase_ = SessionPhase::kQueued;
  json::Value event = json::Value::Object();
  event.Set("event", "resume");
  event.Set("job", pending_job_.ToJson());
  LogEventLocked(std::move(event));
  return Status::OK();
}

Status TuningSession::RunJob() {
  JobSpec job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (phase_ != SessionPhase::kQueued) {
      return Status::FailedPrecondition(
          "RunJob on session '" + name_ + "' in state " +
          SessionPhaseName(phase_));
    }
    if (cancel_requested_.load(std::memory_order_relaxed)) {
      phase_ = SessionPhase::kCancelled;
      last_status_ = Status::Cancelled("cancelled before start");
      ServeMetrics::Get().jobs_cancelled->Add();
      phase_cv_.notify_all();
      return last_status_;
    }
    phase_ = SessionPhase::kRunning;
    job = pending_job_;
    job_round_spans_.clear();
  }
  // The dispatcher thread enters the trace the submit started: everything
  // the job touches from here — logs, recorder events, store appends —
  // carries the submit's trace id.
  trace::TraceScope trace_scope(trace_id_.load(std::memory_order_relaxed),
                                name_);
  const uint64_t queue_wait_ns =
      obs::MonotonicNanos() - enqueued_ns_.load(std::memory_order_relaxed);
  ServeMetrics::Get().queue_wait_ns->Record(queue_wait_ns);
  obs::Recorder::Global().RecordHere(obs::EventKind::kJobStart,
                                     static_cast<int64_t>(queue_wait_ns));

  Stopwatch timer;
  const long long trainings_before = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return total_trainings_;
  }();
  const Status status = [&] {
    obs::ScopedTimer run_timer(ServeMetrics::Get().run_ns);
    return ExecuteJob(job);
  }();
  const double wall = timer.ElapsedSeconds();
  // Snapshot the engine counters while no estimation is running (tuner_ is
  // only touched from this thread); polls then read the copy without
  // touching the engine lock.
  engine::CurveEngineStats cache_stats;
  const bool has_cache_stats = tuner_ != nullptr;
  if (has_cache_stats) cache_stats = tuner_->curve_engine().stats();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (has_cache_stats) {
      cache_stats_ = cache_stats;
      has_cache_stats_ = true;
    }
    ++jobs_run_;
    last_job_wall_seconds_ = wall;
    last_job_trainings_ = total_trainings_ - trainings_before;
    last_status_ = status;
    ServeMetrics& metrics = ServeMetrics::Get();
    metrics.submit_to_done_ns->Record(
        obs::MonotonicNanos() -
        enqueued_ns_.load(std::memory_order_relaxed));
    if (status.ok()) {
      phase_ = SessionPhase::kDone;
      metrics.jobs_done->Add();
    } else if (status.code() == StatusCode::kCancelled) {
      phase_ = SessionPhase::kCancelled;
      metrics.jobs_cancelled->Add();
    } else {
      phase_ = SessionPhase::kFailed;
      metrics.jobs_failed->Add();
    }
    // Fold the job's round spans into the span tree the done frame (and
    // poll) hand back: the per-round Spans become children of the job.
    json::Value tree = json::Value::Object();
    tree.Set("name", "job");
    tree.Set("trace_id", trace::FormatTraceId(
                             trace_id_.load(std::memory_order_relaxed)));
    tree.Set("total_ms", wall * 1000.0);
    tree.Set("queue_wait_ms", static_cast<double>(queue_wait_ns) / 1e6);
    json::Value rounds = json::Value::Array();
    for (json::Value& span : job_round_spans_) {
      rounds.Append(std::move(span));
    }
    job_round_spans_.clear();
    tree.Set("rounds", std::move(rounds));
    last_trace_tree_ = std::move(tree);
    json::Value event = json::Value::Object();
    event.Set("event", "finish");
    event.Set("phase", SessionPhaseName(phase_));
    if (!last_status_.ok()) event.Set("error", last_status_.ToString());
    // The trace id is part of the session's durable state: a restart must
    // not make the closing poll forget which submit ran the last job (the
    // load harness asserts the echo on clean sessions across kills).
    const uint64_t finish_trace_id =
        trace_id_.load(std::memory_order_relaxed);
    if (finish_trace_id != 0) {
      event.Set("trace_id", trace::FormatTraceId(finish_trace_id));
    }
    event.Set("jobs_run", jobs_run_);
    event.Set("rounds_completed", rounds_completed_);
    event.Set("total_trainings", total_trainings_);
    event.Set("last_job_trainings", last_job_trainings_);
    event.Set("last_job_wall_seconds", last_job_wall_seconds_);
    event.Set("rows", rows_);
    event.Set("next_round", next_round_index_);
    if (!final_curve_b_.empty()) {
      json::Value b = json::Value::Array();
      json::Value a = json::Value::Array();
      for (const double v : final_curve_b_) b.Append(v);
      for (const double v : final_curve_a_) a.Append(v);
      event.Set("curve_b", std::move(b));
      event.Set("curve_a", std::move(a));
    }
    LogEventLocked(std::move(event));
    phase_cv_.notify_all();
  }
  obs::Recorder::Global().RecordHere(
      obs::EventKind::kJobDone, static_cast<int64_t>(wall * 1e9));
  // Group commit: one fsync makes the whole job's records (acquires +
  // finish) durable together.
  if (store_ != nullptr) {
    const Status synced = store_->Sync();
    if (!synced.ok()) {
      ST_LOG(Warning) << "journal sync failed for session '" << name_
                      << "': " << synced.ToString();
    }
  }
  return status;
}

Status TuningSession::BuildWorld(const JobSpec& job) {
  const sim::ScenarioSpec spec = ScenarioFromJob(job);
  ST_RETURN_NOT_OK(spec.Validate());
  auto source = std::make_unique<sim::ScriptedSource>(spec);

  SliceTunerOptions options;
  options.model_spec = spec.BuildModelSpec();
  options.trainer = spec.BuildTrainer();
  options.curve_options = spec.BuildCurveOptions(/*num_threads=*/1);
  options.lambda = spec.lambda;
  options.cache_curves = true;
  ST_ASSIGN_OR_RETURN(
      SliceTuner tuner,
      SliceTuner::Create(source->GenerateInitial(),
                         source->GenerateValidation(), job.num_slices,
                         std::move(options)));
  auto owned = std::make_unique<SliceTuner>(std::move(tuner));
  std::lock_guard<std::mutex> lock(mu_);
  source_ = std::move(source);
  tuner_ = std::move(owned);
  rows_ = static_cast<long long>(tuner_->train().size());
  return Status::OK();
}

Status TuningSession::ExecuteJob(const JobSpec& job) {
  if (tuner_ == nullptr) {
    ST_RETURN_NOT_OK(BuildWorld(job));
    std::lock_guard<std::mutex> lock(mu_);
    // The world is a pure function of the job that built it — which is the
    // creation job, unless the session was cancelled before ever running
    // and re-armed with different parameters. Journal the job actually
    // used so recovery replays the right world.
    creation_job_ = job;
    json::Value event = json::Value::Object();
    event.Set("event", "world");
    event.Set("job", creation_job_.ToJson());
    LogEventLocked(std::move(event));
  } else if (job.append_rows > 0) {
    // Incremental update: new rows for one slice arrive with the
    // resubmission. Only that slice's content hash changes, so the next
    // estimation partially refits instead of running cold.
    const int round = next_round_index_;
    source_->BeginRound(round);
    const Dataset batch = source_->Acquire(
        job.append_slice, static_cast<size_t>(job.append_rows));
    // The append consumed this round index's acquisition stream; advance so
    // the job's first round draws fresh examples instead of replaying the
    // exact draws that produced the appended rows (BeginRound re-seeds as a
    // pure function of (seed, round)).
    ++next_round_index_;
    ST_RETURN_NOT_OK(tuner_->AppendTrainingData(batch));
    std::lock_guard<std::mutex> lock(mu_);
    rows_ = static_cast<long long>(tuner_->train().size());
    if (store_ != nullptr) {
      acquire_log_.push_back({round, job.append_slice, job.append_rows});
      json::Value event = json::Value::Object();
      event.Set("event", "acquire");
      event.Set("round", round);
      event.Set("slice", job.append_slice);
      event.Set("n", job.append_rows);
      LogEventLocked(std::move(event));
    }
  }
  return RunRounds(job);
}

Status TuningSession::RunRounds(const JobSpec& job) {
  const double round_budget = job.budget / job.rounds;
  const std::vector<double> costs =
      CostVector(source_->cost(), job.num_slices);
  const bool curve_based = job.method == "moderate";

  for (int r = 0; r < job.rounds; ++r) {
    if (cancel_requested_.load(std::memory_order_relaxed)) {
      return Status::Cancelled(StrFormat(
          "session '%s' cancelled after %d of %d rounds", name_.c_str(), r,
          job.rounds));
    }
    source_->BeginRound(next_round_index_);
    obs::Recorder::Global().RecordHere(obs::EventKind::kRoundStart,
                                       next_round_index_);

    // One span per round: stage timers attribute the round's wall time to
    // estimate / plan / acquire, feed the process-wide serve_round_stage_ns
    // histograms, and the summary rides the round's progress frame.
    obs::Span round_span("round");
    sim::RoundTrace round;
    round.round = next_round_index_;
    round.budget = round_budget;

    std::vector<long long> allocation;
    if (curve_based) {
      CurveEstimationResult curves;
      {
        obs::StageTimer estimate_timer(
            &round_span, "estimate", ServeMetrics::Get().round_estimate_ns);
        ST_ASSIGN_OR_RETURN(curves, tuner_->EstimateCurves());
      }
      round.model_trainings = curves.model_trainings;
      round.curve_b.reserve(curves.slices.size());
      round.curve_a.reserve(curves.slices.size());
      for (const SliceCurveEstimate& slice : curves.slices) {
        round.curve_b.push_back(slice.curve.b);
        round.curve_a.push_back(slice.curve.a);
      }
      OneShotPlan plan;
      {
        const uint64_t plan_start = obs::MonotonicNanos();
        obs::StageTimer plan_timer(&round_span, "plan",
                                   ServeMetrics::Get().round_plan_ns);
        ST_ASSIGN_OR_RETURN(
            plan,
            PlanOneShotWithCurves(curves.slices, tuner_->SliceSizes(), costs,
                                  round_budget, tuner_->options().lambda));
        obs::Recorder::Global().RecordHere(
            obs::EventKind::kPlan,
            static_cast<int64_t>(obs::MonotonicNanos() - plan_start));
      }
      allocation = std::move(plan.examples);
    } else {
      ST_ASSIGN_OR_RETURN(const BaselineKind kind,
                          BaselineFromMethod(job.method));
      ST_ASSIGN_OR_RETURN(
          allocation,
          BaselineAllocation(kind, tuner_->SliceSizes(), costs,
                             round_budget));
    }

    {
      const uint64_t acquire_start = obs::MonotonicNanos();
      obs::StageTimer acquire_timer(&round_span, "acquire",
                                    ServeMetrics::Get().round_acquire_ns);
      for (size_t s = 0; s < allocation.size(); ++s) {
        if (allocation[s] <= 0) continue;
        const Dataset batch = source_->Acquire(
            static_cast<int>(s), static_cast<size_t>(allocation[s]));
        ST_RETURN_NOT_OK(tuner_->AppendTrainingData(batch));
        round.spent += static_cast<double>(allocation[s]) * costs[s];
      }
      obs::Recorder::Global().RecordHere(
          obs::EventKind::kAcquire,
          static_cast<int64_t>(obs::MonotonicNanos() - acquire_start));
    }
    round.acquired = std::move(allocation);
    const std::vector<size_t> sizes = tuner_->SliceSizes();
    round.sizes.reserve(sizes.size());
    for (const size_t size : sizes) {
      round.sizes.push_back(static_cast<long long>(size));
    }

    json::Value frame;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++rounds_completed_;
      total_trainings_ += round.model_trainings;
      rows_ = static_cast<long long>(tuner_->train().size());
      frame = ProgressFrame(name_, frames_.size(),
                            sim::RoundTraceToJson(round));
      json::Value span_json = round_span.ToJson();
      span_json.Set("round", round.round);
      job_round_spans_.push_back(span_json);
      frame.Set("span", std::move(span_json));
      frames_.push_back(frame);
      if (store_ != nullptr) {
        // Journal the round's acquisitions in slice order — the order the
        // batches consumed the round's draw stream, which recovery must
        // replay exactly.
        for (size_t s = 0; s < round.acquired.size(); ++s) {
          if (round.acquired[s] <= 0) continue;
          acquire_log_.push_back(
              {round.round, static_cast<int>(s), round.acquired[s]});
          json::Value event = json::Value::Object();
          event.Set("event", "acquire");
          event.Set("round", round.round);
          event.Set("slice", s);
          event.Set("n", round.acquired[s]);
          LogEventLocked(std::move(event));
        }
      }
    }
    ++next_round_index_;
  }

  // Closing estimate on the final data. Besides giving the client curves
  // that reflect everything acquired, this brings the curve cache up to
  // date with the session's resting state — so a resubmission that appends
  // rows to one slice finds every *other* slice already cached and rides
  // the engine's partial refit instead of a cold estimation.
  if (curve_based) {
    CurveEstimationResult curves;
    {
      obs::ScopedTimer estimate_timer(ServeMetrics::Get().round_estimate_ns);
      ST_ASSIGN_OR_RETURN(curves, tuner_->EstimateCurves());
    }
    std::lock_guard<std::mutex> lock(mu_);
    total_trainings_ += curves.model_trainings;
    final_curve_b_.clear();
    final_curve_a_.clear();
    for (const SliceCurveEstimate& slice : curves.slices) {
      final_curve_b_.push_back(slice.curve.b);
      final_curve_a_.push_back(slice.curve.a);
    }
  }
  return Status::OK();
}

json::Value TuningSession::DurableState() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value out = json::Value::Object();
  out.Set("name", name_);
  out.Set("id", static_cast<long long>(id_));
  out.Set("seq", static_cast<long long>(events_logged_));
  out.Set("phase", SessionPhaseName(phase_));
  const uint64_t trace_id_now = trace_id_.load(std::memory_order_relaxed);
  if (trace_id_now != 0) {
    out.Set("trace_id", trace::FormatTraceId(trace_id_now));
  }
  if (!last_status_.ok()) out.Set("error", last_status_.ToString());
  out.Set("job", creation_job_.ToJson());
  out.Set("world_built", tuner_ != nullptr);
  out.Set("next_round", next_round_index_);
  json::Value acquires = json::Value::Array();
  for (const AcquireRecord& record : acquire_log_) {
    json::Value item = json::Value::Array();
    item.Append(record.round);
    item.Append(record.slice);
    item.Append(record.count);
    acquires.Append(std::move(item));
  }
  out.Set("acquires", std::move(acquires));
  json::Value counters = json::Value::Object();
  counters.Set("jobs_run", jobs_run_);
  counters.Set("rounds_completed", rounds_completed_);
  counters.Set("total_trainings", total_trainings_);
  counters.Set("last_job_trainings", last_job_trainings_);
  counters.Set("last_job_wall_seconds", last_job_wall_seconds_);
  counters.Set("rows", rows_);
  out.Set("counters", std::move(counters));
  if (!final_curve_b_.empty()) {
    json::Value b = json::Value::Array();
    json::Value a = json::Value::Array();
    for (const double v : final_curve_b_) b.Append(v);
    for (const double v : final_curve_a_) a.Append(v);
    out.Set("curve_b", std::move(b));
    out.Set("curve_a", std::move(a));
  }
  // The tuner (and its curve cache) may only be walked while no job runs.
  // Under mu_ with a non-running phase that is guaranteed: RunJob's first
  // transition to kRunning takes mu_, so it cannot start while we hold it.
  if (phase_ != SessionPhase::kRunning && tuner_ != nullptr) {
    out.Set("resting", tuner_->SerializeResting());
  }
  return out;
}

Result<std::unique_ptr<TuningSession>> TuningSession::Restore(
    const json::Value& state, store::DurableStore* store,
    size_t* warm_slices) {
  if (warm_slices != nullptr) *warm_slices = 0;
  if (!state.is_object()) {
    return Status::InvalidArgument("session state must be an object");
  }
  const json::Value* job_json = state.Find("job");
  if (job_json == nullptr) {
    return Status::InvalidArgument("session state for '" +
                                   state.GetString("name") +
                                   "' has no job");
  }
  ST_ASSIGN_OR_RETURN(const JobSpec job, JobSpec::FromJson(*job_json));
  const uint64_t id = static_cast<uint64_t>(state.GetInt("id", 0));
  // Constructed without the store so nothing is journaled during replay;
  // the store is attached at the end for future events.
  auto session = std::unique_ptr<TuningSession>(
      new TuningSession(id, job, /*store=*/nullptr));

  int last_replayed_round = -1;
  if (state.GetBool("world_built", false)) {
    ST_RETURN_NOT_OK(session->BuildWorld(job));
    // Replay the acquire log in order: each batch is re-derived from the
    // deterministic source, so the training rows come back bit-identical
    // without a single model training.
    if (const json::Value* acquires = state.Find("acquires")) {
      if (!acquires->is_array()) {
        return Status::InvalidArgument("session acquires must be an array");
      }
      for (const json::Value& item : acquires->items()) {
        if (!item.is_array() || item.size() != 3) {
          return Status::InvalidArgument(
              "acquire record must be [round, slice, n]");
        }
        const long long round = item.at(0).int_value();
        const long long slice = item.at(1).int_value();
        const long long count = item.at(2).int_value();
        // A single round's allocation to one slice is bounded by the job
        // budget (kMaxBudget at unit cost), not by the much smaller
        // append_rows cap — a legitimately journaled big-budget round
        // must replay.
        if (round < last_replayed_round || slice < 0 ||
            slice >= job.num_slices || count <= 0 ||
            static_cast<double>(count) > JobSpec::kMaxBudget) {
          return Status::InvalidArgument(StrFormat(
              "acquire record [%lld, %lld, %lld] out of range", round,
              slice, count));
        }
        // BeginRound re-anchors the round's draw stream, so it must run
        // once per round — repeating it would replay the round's first
        // draws instead of continuing them.
        if (round != last_replayed_round) {
          session->source_->BeginRound(static_cast<int>(round));
          last_replayed_round = static_cast<int>(round);
        }
        const Dataset batch = session->source_->Acquire(
            static_cast<int>(slice), static_cast<size_t>(count));
        ST_RETURN_NOT_OK(session->tuner_->AppendTrainingData(batch));
        session->acquire_log_.push_back({static_cast<int>(round),
                                         static_cast<int>(slice), count});
      }
    }
    session->rows_ =
        static_cast<long long>(session->tuner_->train().size());
    // Install the fitted-curve cache. Every entry is validated against the
    // content hash of the rows just replayed; entries that no longer match
    // (rows acquired after the snapshot, lost journal tail) silently stay
    // cold and re-fit on the next estimate.
    if (const json::Value* resting = state.Find("resting")) {
      ST_ASSIGN_OR_RETURN(const size_t warm,
                          session->tuner_->RestoreCurveCache(*resting));
      if (warm_slices != nullptr) *warm_slices = warm;
    }
  }

  if (const json::Value* counters = state.Find("counters")) {
    session->jobs_run_ = static_cast<int>(counters->GetInt("jobs_run"));
    session->rounds_completed_ =
        static_cast<int>(counters->GetInt("rounds_completed"));
    session->total_trainings_ = counters->GetInt("total_trainings");
    session->last_job_trainings_ = counters->GetInt("last_job_trainings");
    session->last_job_wall_seconds_ =
        counters->GetDouble("last_job_wall_seconds");
  }
  session->next_round_index_ =
      std::max(static_cast<int>(state.GetInt("next_round", 0)),
               last_replayed_round + 1);
  if (const json::Value* b = state.Find("curve_b")) {
    for (const json::Value& v : b->items()) {
      session->final_curve_b_.push_back(v.number_value());
    }
  }
  if (const json::Value* a = state.Find("curve_a")) {
    for (const json::Value& v : a->items()) {
      session->final_curve_a_.push_back(v.number_value());
    }
  }

  const std::string phase = state.GetString("phase");
  const std::string error = state.GetString("error");
  if (phase == "done") {
    session->phase_ = SessionPhase::kDone;
  } else if (phase == "failed") {
    session->phase_ = SessionPhase::kFailed;
    session->last_status_ =
        Status::Internal(error.empty() ? "restored failed session" : error);
  } else {
    // cancelled — or a session that was queued/running when the state was
    // captured: it comes back cancelled and resumable.
    session->phase_ = SessionPhase::kCancelled;
    session->last_status_ = Status::Cancelled(
        error.empty() ? "interrupted by restart" : error);
  }
  session->events_logged_ = static_cast<uint64_t>(state.GetInt("seq", 0));
  session->trace_id_.store(
      trace::ParseTraceId(state.GetString("trace_id")),
      std::memory_order_relaxed);
  session->store_ = store;
  return session;
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

Result<TuningSession*> SessionManager::Register(const JobSpec& job,
                                                bool* created) {
  if (created != nullptr) *created = false;
  ST_RETURN_NOT_OK(job.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  if (restoring_names_.count(job.session) != 0) {
    // A restore pass is rebuilding this name right now; shed the submit
    // with a retryable rejection rather than racing the rebuild.
    ServeMetrics::Get().shed_restoring->Add();
    return Status::ResourceExhausted("session '" + job.session +
                                     "' is being restored; retry shortly");
  }
  for (const auto& session : sessions_) {
    if (session->name() != job.session) continue;
    ST_RETURN_NOT_OK(session->Resume(job));
    ++stats_.resumed;
    if (store_ != nullptr) (void)store_->Sync();  // resume event durable
    return session.get();
  }
  JobSpec resolved = job;
  if (resolved.num_slices == 0) {
    resolved.num_slices = JobSpec::kDefaultNumSlices;
  }
  if (resolved.append_slice >= resolved.num_slices) {
    return Status::OutOfRange(
        StrFormat("submit_job: append_slice %d outside [0, %d)",
                  resolved.append_slice, resolved.num_slices));
  }
  sessions_.push_back(
      std::make_unique<TuningSession>(next_id_++, resolved, store_));
  ++stats_.created;
  ServeMetrics::Get().sessions->Set(static_cast<double>(sessions_.size()));
  if (store_ != nullptr) (void)store_->Sync();  // create event durable
  if (created != nullptr) *created = true;
  return sessions_.back().get();
}

void SessionManager::Drop(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if ((*it)->id() != id) continue;
    --stats_.created;  // the session never became visible to clients
    // Recovery must not resurrect the never-admitted name.
    (*it)->LogDropped();
    if (store_ != nullptr) (void)store_->Sync();
    sessions_.erase(it);
    ServeMetrics::Get().sessions->Set(static_cast<double>(sessions_.size()));
    return;
  }
}

TuningSession* SessionManager::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->name() == name) return session.get();
  }
  return nullptr;
}

TuningSession* SessionManager::FindById(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->id() == id) return session.get();
  }
  return nullptr;
}

Status SessionManager::Cancel(const std::string& name) {
  TuningSession* session = Find(name);
  if (session == nullptr) {
    return Status::NotFound("unknown session '" + name + "'");
  }
  if (session->Terminal()) {
    return Status::FailedPrecondition(
        "session '" + name + "' already finished (" +
        SessionPhaseName(session->phase()) + ")");
  }
  session->RequestCancel();
  return Status::OK();
}

size_t SessionManager::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t active = 0;
  for (const auto& session : sessions_) {
    const SessionPhase p = session->phase();
    if (p == SessionPhase::kQueued || p == SessionPhase::kRunning) ++active;
  }
  return active;
}

size_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void SessionManager::RecordOutcome(const Status& status) {
  std::function<void()> callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      ++stats_.completed;
    } else if (status.code() == StatusCode::kCancelled) {
      ++stats_.cancelled;
    } else {
      ++stats_.failed;
    }
    callback = job_finished_callback_;
  }
  // Outside the lock: the callback reaches into store maintenance, which
  // may itself be mid-checkpoint calling DurableSnapshot (needs mu_).
  if (callback) callback();
}

void SessionManager::SetJobFinishedCallback(std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  job_finished_callback_ = std::move(callback);
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

json::Value SessionManager::StatsJson() const {
  const SessionManagerStats s = stats();
  json::Value out = json::Value::Object();
  out.Set("sessions", session_count());
  out.Set("active", active_count());
  out.Set("created", s.created);
  out.Set("resumed", s.resumed);
  out.Set("completed", s.completed);
  out.Set("cancelled", s.cancelled);
  out.Set("failed", s.failed);
  out.Set("restored", s.restored);
  return out;
}

// ---------------------------------------------------------------------------
// Durability: snapshot + journal-tail recovery
// ---------------------------------------------------------------------------

json::Value RestoreReport::ToJson() const {
  json::Value out = json::Value::Object();
  out.Set("sessions_restored", sessions_restored);
  out.Set("sessions_skipped", sessions_skipped);
  out.Set("sessions_dropped", sessions_dropped);
  out.Set("warm_slices", warm_slices);
  out.Set("journal_records_applied", journal_records_applied);
  out.Set("tail_truncated", tail_truncated);
  return out;
}

void SessionManager::AttachStore(store::DurableStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  store_ = store;
}

json::Value SessionManager::DurableSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Value out = json::Value::Object();
  out.Set("format", "slicetuner-serve-state");
  out.Set("version", 1);
  out.Set("next_id", static_cast<long long>(next_id_));
  json::Value sessions = json::Value::Array();
  for (const auto& session : sessions_) {
    sessions.Append(session->DurableState());
  }
  out.Set("sessions", std::move(sessions));
  return out;
}

namespace {

// Advances one merged session-state document by one journal record. The
// state documents are DurableState()-shaped; events carry deltas
// (acquires) or absolutes (finish counters), so applying each tail record
// on top of the snapshot entry reproduces the pre-crash state.
void ApplyJournalRecord(json::Value* entry, const json::Value& record) {
  const std::string event = record.GetString("event");
  if (event == "create") {
    entry->Set("id", record.GetInt("id"));
    if (const json::Value* job = record.Find("job")) {
      entry->Set("job", *job);
    }
    entry->Set("phase", "queued");
  } else if (event == "world") {
    if (const json::Value* job = record.Find("job")) {
      entry->Set("job", *job);
    }
    entry->Set("world_built", true);
  } else if (event == "resume") {
    entry->Set("phase", "queued");
  } else if (event == "acquire") {
    json::Value acquires = json::Value::Array();
    if (const json::Value* existing = entry->Find("acquires")) {
      acquires = *existing;
    }
    json::Value item = json::Value::Array();
    item.Append(record.GetInt("round"));
    item.Append(record.GetInt("slice"));
    item.Append(record.GetInt("n"));
    acquires.Append(std::move(item));
    entry->Set("acquires", std::move(acquires));
    entry->Set("world_built", true);
  } else if (event == "finish") {
    entry->Set("phase", record.GetString("phase"));
    if (record.Has("error")) {
      entry->Set("error", record.GetString("error"));
    }
    if (record.Has("trace_id")) {
      entry->Set("trace_id", record.GetString("trace_id"));
    }
    json::Value counters = json::Value::Object();
    counters.Set("jobs_run", record.GetInt("jobs_run"));
    counters.Set("rounds_completed", record.GetInt("rounds_completed"));
    counters.Set("total_trainings", record.GetInt("total_trainings"));
    counters.Set("last_job_trainings", record.GetInt("last_job_trainings"));
    counters.Set("last_job_wall_seconds",
                 record.GetDouble("last_job_wall_seconds"));
    counters.Set("rows", record.GetInt("rows"));
    entry->Set("counters", std::move(counters));
    entry->Set("next_round", record.GetInt("next_round"));
    if (const json::Value* b = record.Find("curve_b")) {
      entry->Set("curve_b", *b);
    }
    if (const json::Value* a = record.Find("curve_a")) {
      entry->Set("curve_a", *a);
    }
    entry->Set("world_built", true);
  } else if (event == "drop") {
    entry->Set("dropped", true);
  }
}

}  // namespace

Result<RestoreReport> SessionManager::RestoreFromState(
    const store::RecoveredState& state, store::DurableStore* store,
    bool skip_existing) {
  RestoreReport report;
  report.tail_truncated = state.tail_truncated;

  // Merge base: the snapshot's session entries, in snapshot order.
  std::vector<std::pair<std::string, json::Value>> merged;
  auto find_merged = [&merged](const std::string& name) -> json::Value* {
    for (auto& pair : merged) {
      if (pair.first == name) return &pair.second;
    }
    return nullptr;
  };
  long long next_id = 1;
  if (state.snapshot.is_object()) {
    next_id = state.snapshot.GetInt("next_id", 1);
    if (const json::Value* sessions = state.snapshot.Find("sessions")) {
      for (const json::Value& entry : sessions->items()) {
        if (!entry.is_object()) continue;
        const std::string name = entry.GetString("name");
        if (name.empty() || find_merged(name) != nullptr) continue;
        merged.emplace_back(name, entry);
      }
    }
  }

  // Roll the journal tail forward. Each session's per-event sequence
  // numbers say which records its snapshot entry already covers. Session
  // names can be reused across incarnations (a shed submit is dropped,
  // the retry recreates the name with a fresh id): a create record whose
  // id differs from the merged entry's starts the name over, so a stale
  // drop flag or a higher old seq cannot swallow the new session.
  for (const json::Value& record : state.tail) {
    const std::string name = record.GetString("session");
    if (name.empty()) continue;
    const long long seq = record.GetInt("seq", -1);
    if (seq < 0) continue;
    json::Value* entry = find_merged(name);
    if (entry == nullptr) {
      json::Value fresh = json::Value::Object();
      fresh.Set("name", name);
      fresh.Set("seq", 0);
      merged.emplace_back(name, std::move(fresh));
      entry = &merged.back().second;
    } else if (record.GetString("event") == "create" &&
               record.GetInt("id", -1) != entry->GetInt("id", -1)) {
      json::Value fresh = json::Value::Object();
      fresh.Set("name", name);
      fresh.Set("seq", 0);
      *entry = std::move(fresh);
    }
    if (seq < entry->GetInt("seq", 0)) continue;  // covered by the snapshot
    ApplyJournalRecord(entry, record);
    entry->Set("seq", seq + 1);
    ++report.journal_records_applied;
  }

  // Claim the names this pass will materialize. Until a name is released
  // below, Register sheds submits for it (ResourceExhausted; the server
  // attaches a retry hint) and a concurrent restore pass leaves it alone —
  // so a submit arriving while `restore` runs under load can neither race
  // the rebuild nor create a duplicate session.
  std::unordered_set<std::string> claimed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& pair : merged) {
      const json::Value& entry = pair.second;
      if (entry.GetBool("dropped", false) || !entry.Has("job")) continue;
      if (restoring_names_.count(pair.first) != 0) continue;
      bool live = false;
      for (const auto& session : sessions_) {
        if (session->name() == pair.first) {
          live = true;
          break;
        }
      }
      if (skip_existing && live) continue;
      restoring_names_.insert(pair.first);
      claimed.insert(pair.first);
    }
  }
  if (restore_hook_) restore_hook_();

  // Materialize.
  for (auto& pair : merged) {
    const std::string& name = pair.first;
    json::Value& entry = pair.second;
    if (entry.GetBool("dropped", false)) {
      ++report.sessions_dropped;
      continue;
    }
    if (!entry.Has("job")) {
      // The create event never became durable; there is nothing to rebuild.
      continue;
    }
    if (claimed.count(name) == 0) {
      // Live already, or another concurrent restore pass owns the name.
      ++report.sessions_skipped;
      continue;
    }
    size_t warm = 0;
    Result<std::unique_ptr<TuningSession>> restored =
        TuningSession::Restore(entry, store, &warm);
    if (!restored.ok()) {
      // One undecodable session must not take down recovery of the rest.
      ST_LOG(Warning) << "could not restore session '" << name
                      << "': " << restored.status().ToString();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      next_id_ = std::max(
          {next_id_, static_cast<uint64_t>(next_id), (*restored)->id() + 1});
      sessions_.push_back(std::move(*restored));
      ++stats_.restored;
      ServeMetrics::Get().sessions->Set(
          static_cast<double>(sessions_.size()));
    }
    ++report.sessions_restored;
    report.warm_slices += warm;
  }
  // An empty recovery still adopts the snapshot's id allocator, and the
  // claimed names become submittable again (restored ones as live
  // sessions, failed ones as fresh creates).
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_id_ = std::max(next_id_, static_cast<uint64_t>(next_id));
    for (const std::string& name : claimed) restoring_names_.erase(name);
  }
  return report;
}

void SessionManager::SetRestoreHookForTesting(std::function<void()> hook) {
  restore_hook_ = std::move(hook);
}

}  // namespace serve
}  // namespace slicetuner
