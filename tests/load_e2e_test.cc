// End-to-end load-harness test over the real binaries: runs
// slicetuner_loadgen in spawn mode (it forks a real slicetuner_serve with a
// state dir), at a small-but-honest scale with one mid-run SIGKILL +
// restart, and asserts the run passes — every session terminal, nothing
// acked lost, the oracle bit-identity check green, and BENCH_load.json's
// gated bools all true. This is the smoke-scale twin of the nightly stress
// lane (.github/workflows/nightly-stress.yml).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "common/json.h"

namespace slicetuner {
namespace {

#ifndef SLICETUNER_LOADGEN_BIN
#define SLICETUNER_LOADGEN_BIN "./slicetuner_loadgen"
#endif
#ifndef SLICETUNER_SERVE_BIN
#define SLICETUNER_SERVE_BIN "./slicetuner_serve"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunCommand(const std::string& command) {
  CommandResult result;
  std::FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(LoadE2ETest, KillAndRestartRunPassesAllGates) {
  // Own results dir so a parallel ctest run (load_stress writes into the
  // default one) cannot collide on BENCH_load.json / the state dir.
  const std::string results = testing::TempDir() + "/load_e2e_results";
  const CommandResult run = RunCommand(
      "SLICETUNER_RESULTS_DIR=" + results + " " + SLICETUNER_LOADGEN_BIN +
      " --serve-bin=" + SLICETUNER_SERVE_BIN +
      " --sessions=48 --kills=1 --rate=80 --driver-threads=3"
      " --append-fraction=0.3 --cancel-fraction=0.1 --stalled-readers=1"
      " --seed=11");
  EXPECT_EQ(run.exit_code, 0) << run.output;

  const Result<std::string> text =
      ReadFileToString(results + "/BENCH_load.json");
  ASSERT_TRUE(text.ok()) << run.output;
  const Result<json::Value> summary = json::Value::Parse(*text);
  ASSERT_TRUE(summary.ok());

  for (const char* key :
       {"all_sessions_terminal", "no_sessions_failed",
        "no_acknowledged_lost", "restart_recovered", "oracle_match",
        "slo_shed_rate_ok", "slo_poll_p99_ok", "slo_submit_p99_ok",
        "daemon_clean_shutdown"}) {
    ASSERT_TRUE(summary->Has(key)) << key;
    EXPECT_TRUE(summary->GetBool(key)) << key << "\n" << run.output;
  }
  EXPECT_EQ(summary->GetInt("restarts_done"), 1) << run.output;
  EXPECT_GT(summary->GetInt("oracle_checked"), 0) << run.output;
  EXPECT_GE(summary->GetInt("submits"), summary->GetInt("sessions"));

  // The daemon's log (redirected stdout/stderr across both generations)
  // must show two startups against the same state dir.
  const Result<std::string> log =
      ReadFileToString(results + "/load_daemon.log");
  ASSERT_TRUE(log.ok());
  size_t banners = 0, pos = 0;
  while ((pos = log->find("slicetuner_serve listening", pos)) !=
         std::string::npos) {
    ++banners;
    pos += 1;
  }
  EXPECT_EQ(banners, 2u) << *log;
}

}  // namespace
}  // namespace slicetuner
