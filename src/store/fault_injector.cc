#include "store/fault_injector.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <utility>

namespace slicetuner {
namespace store {

const std::vector<std::string>& MaintenanceCrashPoints() {
  static const std::vector<std::string>& points = *new std::vector<std::string>{
      fault::kMaintSeal,
      fault::kMaintRotate,
      fault::kJournalOpen,
      fault::kMaintFold,
      fault::kMaintPreserve,
      fault::kSnapshotWriteTmp,
      fault::kSnapshotPreRename,
      fault::kSnapshotPostRename,
      fault::kMaintPostSnapshotPreRetire,
      fault::kMaintRetireJournal,
      fault::kMaintRetireSnapshot,
  };
  return points;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector& injector = *new FaultInjector();
  return injector;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("SLICETUNER_FAULT_CRASH");
  if (env == nullptr || env[0] == '\0') return;
  crash_point_ = env;
  const size_t colon = crash_point_.find(':');
  if (colon != std::string::npos) {
    crash_skip_ = std::atoi(crash_point_.c_str() + colon + 1);
    crash_point_.resize(colon);
  }
  active_.store(true, std::memory_order_relaxed);
}

Status FaultInjector::Reached(const char* point) {
  if (!active_.load(std::memory_order_relaxed)) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  ++hits_[point];

  if (!crash_point_.empty() && crash_point_ == point) {
    if (crash_skip_ > 0) {
      --crash_skip_;
    } else {
      // Die like a kill -9 at this exact state transition: no stdio
      // flush, no destructors, nothing buffered reaches disk.
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "fault-injector: crashing at %s (SLICETUNER_FAULT_CRASH)\n",
                    point);
      const ssize_t ignored = ::write(2, msg, std::strlen(msg));
      (void)ignored;
      ::_exit(kCrashExitCode);
    }
  }

  const auto it = arms_.find(point);
  if (it == arms_.end()) return Status::OK();
  Arm& arm = it->second;
  if (arm.skip > 0) {
    --arm.skip;
    return Status::OK();
  }
  if (arm.remaining == 0) return Status::OK();
  if (arm.remaining > 0) --arm.remaining;
  if (arm.hook) {
    // One-shot: drop the arm before running so a hook that re-enters the
    // durability path (e.g. reads files while copying the state dir) can
    // never re-trigger itself. The lock stays held — a consistent crash
    // image requires that no writer races the copy anyway.
    std::function<Status()> hook = std::move(arm.hook);
    arms_.erase(it);
    return hook();
  }
  return arm.error;
}

void FaultInjector::ArmFailure(const std::string& point, Status error,
                               int skip, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  Arm arm;
  arm.error = std::move(error);
  arm.skip = skip;
  arm.remaining = count;
  arms_[point] = std::move(arm);
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmHook(const std::string& point,
                            std::function<Status()> hook, int skip) {
  std::lock_guard<std::mutex> lock(mu_);
  Arm arm;
  arm.hook = std::move(hook);
  arm.skip = skip;
  arm.remaining = 1;
  arms_[point] = std::move(arm);
  active_.store(true, std::memory_order_relaxed);
}

size_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  arms_.clear();
  hits_.clear();
  active_.store(!crash_point_.empty(), std::memory_order_relaxed);
}

}  // namespace store
}  // namespace slicetuner
