// The acquisition baselines of Section 2.2 / Figure 3: Uniform (equal
// amounts per slice), Water filling (equalize final sizes), and
// Proportional (match the original distribution, the strictly-worse baseline
// from reference [12]).

#ifndef SLICETUNER_CORE_BASELINES_H_
#define SLICETUNER_CORE_BASELINES_H_

#include <vector>

#include "common/result.h"

namespace slicetuner {

enum class BaselineKind {
  kUniform,
  kWaterFilling,
  kProportional,
};

const char* BaselineName(BaselineKind kind);

/// Computes how many examples each baseline acquires per slice given current
/// sizes, per-example costs, and the budget. The returned plan's spend never
/// exceeds `budget`, and leftover budget smaller than the cheapest example
/// is forfeited. Errors on arity mismatch / non-positive costs.
Result<std::vector<long long>> BaselineAllocation(
    BaselineKind kind, const std::vector<size_t>& sizes,
    const std::vector<double>& costs, double budget);

/// Uniform: the same d for every slice, the largest d affordable.
Result<std::vector<long long>> UniformAllocation(
    const std::vector<size_t>& sizes, const std::vector<double>& costs,
    double budget);

/// Water filling: raise all slices toward a common level L with
/// sum_i c_i * max(0, L - |s_i|) = B (level found by bisection).
Result<std::vector<long long>> WaterFillingAllocation(
    const std::vector<size_t>& sizes, const std::vector<double>& costs,
    double budget);

/// Proportional: d_i proportional to |s_i| (preserves the existing bias).
Result<std::vector<long long>> ProportionalAllocation(
    const std::vector<size_t>& sizes, const std::vector<double>& costs,
    double budget);

}  // namespace slicetuner

#endif  // SLICETUNER_CORE_BASELINES_H_
